// Package e2e is the black-box chaos harness: it compiles the real
// kiffserve and kiffknn binaries, spawns servers as separate processes,
// drives them over HTTP with seeded deterministic action streams, and
// asserts the served answers stay byte-identical to an in-process
// single-maintainer oracle — across crashes, restarts, backpressure
// episodes and read-only flips. See docs/TESTING.md for how to run the
// smoke vs a long seeded soak and how to reproduce a failure from its
// logged seed.
package e2e

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// binDir holds the compiled binaries for the whole test run; TestMain
// removes it (t.TempDir would tear it down after the first test using
// it, defeating the build-once cache).
var (
	binDir    string
	buildOnce sync.Once
	buildErr  error
)

func TestMain(m *testing.M) {
	code := m.Run()
	if binDir != "" {
		os.RemoveAll(binDir)
	}
	os.Exit(code)
}

// moduleRoot walks up from the working directory to the go.mod, the
// directory `go build ./cmd/...` must run from.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// buildBinaries compiles kiffserve (with the faultinject tag, so the
// harness can reach /faults) and kiffknn once per `go test` process,
// returning their paths.
func buildBinaries(t *testing.T) (kiffserve, kiffknn string) {
	t.Helper()
	buildOnce.Do(func() {
		root := moduleRoot(t)
		dir, err := os.MkdirTemp("", "kiff-e2e-bin-")
		if err != nil {
			buildErr = err
			return
		}
		binDir = dir
		for _, b := range []struct {
			out  string
			tags string
			pkg  string
		}{
			{"kiffserve", "faultinject", "./cmd/kiffserve"},
			{"kiffknn", "", "./cmd/kiffknn"},
		} {
			args := []string{"build"}
			if b.tags != "" {
				args = append(args, "-tags", b.tags)
			}
			args = append(args, "-o", filepath.Join(dir, b.out), b.pkg)
			cmd := exec.Command("go", args...)
			cmd.Dir = root
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return filepath.Join(binDir, "kiffserve"), filepath.Join(binDir, "kiffknn")
}

// runKiffknn builds a checkpoint pair (graph + dataset binary files)
// from an edge list through the real binary — the same artifact a
// production deploy would serve.
func runKiffknn(t *testing.T, kiffknn, in string, k int, gpath, dpath string) {
	t.Helper()
	cmd := exec.Command(kiffknn, "-in", in, "-k", fmt.Sprint(k),
		"-save", gpath, "-save-data", dpath, "-o", os.DevNull)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("kiffknn: %v\n%s", err, out)
	}
}

var servingLine = regexp.MustCompile(`kiffserve: serving on http://(\S+)`)

// proc is one live kiffserve process under harness control.
type proc struct {
	cmd     *exec.Cmd
	url     string
	exitc   chan struct{} // closed once the process is reaped
	exitErr error         // cmd.Wait result; read only after exitc closes

	mu     sync.Mutex
	stderr bytes.Buffer
}

// startServer spawns the kiffserve binary with fault injection armed
// (KIFFSERVE_FAULTS=1: endpoint live, knobs off) on an ephemeral port
// and waits until it reports its bound address.
func startServer(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	p := &proc{exitc: make(chan struct{})}
	p.cmd = exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	p.cmd.Env = append(os.Environ(), "KIFFSERVE_FAULTS=1")
	stderr, err := p.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrc := make(chan string, 1)
	scanned := make(chan struct{})
	go func() {
		defer close(scanned)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.stderr.WriteString(line)
			p.stderr.WriteByte('\n')
			p.mu.Unlock()
			if m := servingLine.FindStringSubmatch(line); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	go func() {
		<-scanned // never call Wait while the pipe is still being read
		p.exitErr = p.cmd.Wait()
		close(p.exitc)
	}()
	select {
	case addr := <-addrc:
		p.url = "http://" + addr
	case <-p.exitc:
		t.Fatalf("kiffserve exited before ready: %v\n%s", p.exitErr, p.stderrText())
	case <-time.After(60 * time.Second):
		p.cmd.Process.Kill()
		t.Fatalf("kiffserve never became ready\n%s", p.stderrText())
	}
	t.Cleanup(func() {
		// Best-effort teardown for early test failures; normal flow has
		// already reaped the process.
		select {
		case <-p.exitc:
		default:
			p.cmd.Process.Kill()
			<-p.exitc
		}
	})
	return p
}

func (p *proc) stderrText() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stderr.String()
}

// kill SIGKILLs the process — the crash fault — and reaps it.
func (p *proc) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-p.exitc // "signal: killed" is the expected outcome
}

// terminate SIGTERMs the process — the graceful path — and requires a
// clean exit (the shutdown flush and final checkpoint must succeed).
func (p *proc) terminate(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-p.exitc:
		if p.exitErr != nil {
			t.Fatalf("kiffserve exited uncleanly on SIGTERM: %v\n%s", p.exitErr, p.stderrText())
		}
	case <-time.After(30 * time.Second):
		p.cmd.Process.Kill()
		t.Fatalf("kiffserve ignored SIGTERM\n%s", p.stderrText())
	}
}

// --- HTTP helpers --------------------------------------------------------

// harnessKey, when set, is attached as X-API-Key to every doJSON/tryJSON
// request — how the hardened chaos run authenticates the entire existing
// driver (checkpoints, healthz polls, mutations) without threading a key
// through every call site. Tests in this package run sequentially, so a
// set-and-defer-reset around one run is safe.
var harnessKey string

// doJSON performs one request (authenticated via harnessKey when set)
// and returns status + body bytes.
func doJSON(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	st, _, out := doJSONKeyed(t, method, url, harnessKey, body)
	return st, out
}

// doJSONKeyed performs one request with an explicit API key ("" sends no
// key at all, regardless of harnessKey) and returns status, headers and
// body — the hardened actions assert on Retry-After and denial bodies.
func doJSONKeyed(t *testing.T, method, url, key string, body any) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, out
}

// tryJSON is doJSON without the t.Fatal on transport failure — for
// requests that are EXPECTED to die mid-flight (the torn-append fault
// kills the server before it can answer).
func tryJSON(method, url string, body any) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	if harnessKey != "" {
		req.Header.Set("X-API-Key", harnessKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out, nil
}

// walStats fetches the /stats "wal" block — the durability counters a
// logged server exposes.
func walStats(t *testing.T, url string) (replayed, truncatedBytes, appended int64) {
	t.Helper()
	status, body := doJSON(t, http.MethodGet, url+"/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("stats: %d: %s", status, body)
	}
	var s struct {
		WAL *struct {
			Replayed       int64 `json:"replayed"`
			TruncatedBytes int64 `json:"truncated_bytes"`
			Appended       int64 `json:"appended"`
		} `json:"wal"`
	}
	if err := json.Unmarshal(body, &s); err != nil {
		t.Fatal(err)
	}
	if s.WAL == nil {
		t.Fatalf("/stats has no wal block (is -wal on?): %s", body)
	}
	return s.WAL.Replayed, s.WAL.TruncatedBytes, s.WAL.Appended
}

// jsonField extracts one top-level field as raw JSON text — the
// equality unit across servers, since whole bodies differ by snapshot
// version after restarts.
func jsonField(t *testing.T, body []byte, field string) string {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("unmarshal %q from %s: %v", field, body, err)
	}
	raw, ok := m[field]
	if !ok {
		t.Fatalf("body has no %q field: %s", field, body)
	}
	return string(raw)
}

// healthz fetches the health endpoint's fields.
func healthz(t *testing.T, url string) (users int, ready string, queueDepth int) {
	t.Helper()
	status, body := doJSON(t, http.MethodGet, url+"/healthz", nil)
	if status != http.StatusOK {
		t.Fatalf("healthz: %d: %s", status, body)
	}
	var h struct {
		Users      int    `json:"users"`
		Ready      string `json:"ready"`
		QueueDepth int    `json:"queue_depth"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	return h.Users, h.Ready, h.QueueDepth
}

// checkpoint triggers POST /checkpoint and returns the directory the
// server wrote. The harness only ever restarts from directories whose
// response it received — a torn save from a later SIGKILL is never
// trusted, matching how a real operator treats acknowledged
// checkpoints.
func checkpoint(t *testing.T, url string) string {
	t.Helper()
	status, body := doJSON(t, http.MethodPost, url+"/checkpoint", nil)
	if status != http.StatusOK {
		t.Fatalf("POST /checkpoint: %d: %s", status, body)
	}
	var ck struct {
		Dir string `json:"dir"`
	}
	if err := json.Unmarshal(body, &ck); err != nil {
		t.Fatal(err)
	}
	if ck.Dir == "" {
		t.Fatalf("checkpoint reply has no dir: %s", body)
	}
	return ck.Dir
}
