// Package kiff is a Go implementation of KIFF (K-nearest-neighbor
// Impressively Fast and eFficient), the KNN-graph construction algorithm
// of Boutet, Kermarrec, Mittal & Taïani, "Being prepared in a sparse
// world: the case of KNN graph construction", ICDE 2016 — together with
// the baselines the paper evaluates against (NN-Descent, HyRec, brute
// force) and the full experimental harness that regenerates the paper's
// tables and figures.
//
// # Quick start
//
//	ds, err := kiff.LoadFile("ratings.tsv", kiff.LoadOptions{Name: "ratings"})
//	if err != nil { ... }
//	res, err := kiff.Build(ds, kiff.Options{K: 20})
//	if err != nil { ... }
//	for _, nb := range res.Graph.Neighbors(0) {
//		fmt.Println(nb.ID, nb.Sim)
//	}
//
// KIFF targets sparse user–item datasets: each user is associated with a
// set of items (optionally rated), and two users' similarity is computed
// from their item profiles. On such datasets KIFF prunes the candidate
// space to the users sharing at least one item — without losing any
// candidate that any overlap-based metric could score above zero — and
// examines candidates in decreasing shared-item order, which is why it
// converges an order of magnitude faster than random-start greedy
// approaches while delivering a better approximation.
//
// # The builder engine
//
// Every construction algorithm is a builder registered with the engine in
// kiff/internal/engine, which owns the shared pipeline (option
// normalization → metric preparation → refinement → finalization) and the
// cost instrumentation. Build dispatches Options.Algorithm through that
// registry; Algorithms lists what is registered. New algorithms plug in
// by implementing engine.Builder — no dispatch site needs to change.
//
// # Incremental maintenance
//
// Batch construction is not the only mode: a Maintainer keeps a
// KIFF-built graph fresh while profiles stream in, without full
// reconstruction. Insert adds a user and splices it into the graph by
// evaluating only its ranked candidates; AddRating plus Rebuild refresh
// the neighborhoods invalidated by profile updates. See NewMaintainer.
//
// # Sharding
//
// When one writer is not enough, NewShardedMaintainer hash-partitions
// the population across N independent Maintainers: writes route by
// owner and run in parallel per shard, exact profile queries scatter to
// every shard and gather into the same top-k a single Maintainer would
// return, and the whole pool persists as per-shard checkpoints plus a
// manifest. See ShardedMaintainer.
package kiff

import (
	"fmt"
	"io"
	"os"

	"kiff/internal/bruteforce"
	"kiff/internal/core"
	"kiff/internal/dataset"
	"kiff/internal/engine"
	"kiff/internal/knngraph"
	"kiff/internal/runstats"
	"kiff/internal/similarity"
	"kiff/internal/sparse"

	// Registered engine builders that the facade does not otherwise use.
	_ "kiff/internal/bucket"
	_ "kiff/internal/hyrec"
	_ "kiff/internal/nndescent"
)

// Dataset is a user–item bipartite dataset; see LoadFile, Load and the
// Generate* helpers for the supported sources. Datasets support
// append-only mutation (AddUser, AddRating) for online workloads; pair
// them with a Maintainer to keep a constructed graph fresh.
type Dataset = dataset.Dataset

// DatasetView is a frozen, page-shared snapshot of a Dataset — what
// Snapshot.Dataset returns. Views share unchanged header pages with the
// previous publication (copy-on-write), so publishing one after a small
// mutation batch is O(dirty pages); treat them as strictly read-only.
type DatasetView = dataset.View

// LoadOptions controls edge-list parsing.
type LoadOptions = dataset.LoadOptions

// Graph is a directed k-NN graph.
type Graph = knngraph.Graph

// Neighbor is one edge of a Graph.
type Neighbor = knngraph.Neighbor

// Run carries the cost metrics of a construction run (wall time, scan
// rate, phase breakdown, per-iteration traces).
type Run = runstats.Run

// Algorithm selects the construction algorithm.
type Algorithm string

// Available algorithms. Algorithms returns the full registry, including
// builders registered by other packages.
const (
	// KIFF is the paper's contribution and the default.
	KIFF Algorithm = "kiff"
	// NNDescent is the Dong et al. baseline.
	NNDescent Algorithm = "nn-descent"
	// HyRec is the browser-oriented greedy baseline.
	HyRec Algorithm = "hyrec"
	// BruteForce computes the exact graph in O(|U|²) similarity calls.
	BruteForce Algorithm = "brute-force"
	// Bucketed is the sub-quadratic divide-and-conquer builder: minhash
	// bucketing, per-bucket KIFF, cross-bucket refinement sweeps. See
	// Bands, BucketSize and Sweeps for its recall-vs-cost knobs.
	Bucketed Algorithm = "bucketed"
)

// Algorithms lists the names of every registered construction algorithm,
// sorted. Any of them is a valid Options.Algorithm.
func Algorithms() []string { return engine.Names() }

// Options configures Build. Only K is mandatory.
type Options struct {
	// K is the neighborhood size.
	K int
	// Algorithm defaults to KIFF; see Algorithms for the registry.
	Algorithm Algorithm
	// Metric names the similarity measure: "cosine" (default), "jaccard",
	// "adamic-adar", "overlap" or "dice".
	Metric string
	// Gamma is KIFF's per-iteration candidate budget (0 = the paper's 2k;
	// negative = exhaust the candidate sets, which yields the exact graph).
	Gamma int
	// Beta is KIFF's / HyRec's termination threshold. 0 selects the paper
	// default 0.001. A negative Beta disables the threshold: KIFF then
	// iterates until its candidate sets are exhausted, which yields the
	// exact graph (§III-D) — the same result as a negative Gamma, spread
	// over γ-sized iterations. HyRec has no exhaustion point and rejects
	// a negative Beta unless MaxIterations (not exposed here) bounds it.
	Beta float64
	// Workers bounds parallelism (0 = all CPUs).
	Workers int
	// Seed drives the randomized baselines (KIFF is deterministic).
	Seed int64
	// MinRating enables KIFF's positive-rating candidate filter (§VII).
	MinRating float64
	// Bands is the bucketed builder's number of independent minhash
	// bucketings (0 = 4). More bands recover more true neighbors at
	// proportionally more similarity evaluations.
	Bands int
	// BucketSize bounds the bucketed builder's per-bucket population
	// (0 = 192).
	BucketSize int
	// Sweeps is the bucketed builder's number of cross-bucket refinement
	// passes (0 = 2, negative disables them).
	Sweeps int
}

// engineOptions maps the facade options onto the engine's shared set.
// The metric name is resolved here so unknown names fail fast.
func (o Options) engineOptions() (engine.Options, error) {
	metricName := o.Metric
	if metricName == "" {
		metricName = "cosine"
	}
	metric, err := similarity.ByName(metricName)
	if err != nil {
		return engine.Options{}, err
	}
	return engine.Options{
		K:          o.K,
		Metric:     metric,
		Gamma:      o.Gamma,
		Beta:       o.Beta,
		Workers:    o.Workers,
		Seed:       o.Seed,
		MinRating:  o.MinRating,
		Bands:      o.Bands,
		BucketSize: o.BucketSize,
		Sweeps:     o.Sweeps,
	}, nil
}

// Result is the outcome of Build.
type Result struct {
	Graph *Graph
	Run   Run
}

// Build constructs a KNN graph over the dataset's users, dispatching
// Options.Algorithm through the engine registry.
func Build(d *Dataset, opts Options) (*Result, error) {
	res, err := buildEngine(d, opts)
	if err != nil {
		return nil, err
	}
	return &Result{Graph: res.Graph, Run: res.Run}, nil
}

func buildEngine(d *Dataset, opts Options) (*engine.Result, error) {
	algo := string(opts.Algorithm)
	if algo == "" {
		algo = string(KIFF)
	}
	eo, err := opts.engineOptions()
	if err != nil {
		return nil, err
	}
	return engine.Build(algo, d, eo)
}

// Recall scores an approximate graph against exact ground truth computed
// by brute force over sampleSize users (0 = every user), using the same
// metric. It implements Eq. (3)/(4) of the paper, tie-aware. The graph
// must cover exactly the dataset's users — loading a saved graph against
// a different edge list is rejected rather than mis-scored.
func Recall(d *Dataset, g *Graph, opts Options, sampleSize int) (float64, error) {
	if g.NumUsers() != d.NumUsers() {
		return 0, fmt.Errorf("kiff: recall: graph covers %d users, dataset has %d (was the graph built/saved from a different dataset?)",
			g.NumUsers(), d.NumUsers())
	}
	metricName := opts.Metric
	if metricName == "" {
		metricName = "cosine"
	}
	metric, err := similarity.ByName(metricName)
	if err != nil {
		return 0, err
	}
	var exact *knngraph.Exact
	if sampleSize > 0 && sampleSize < d.NumUsers() {
		exact = bruteforce.Sampled(d, metric, g.K(), sampleSize, opts.Seed, opts.Workers)
	} else {
		exact = bruteforce.Exact(d, metric, g.K(), opts.Workers)
	}
	return exact.Recall(g), nil
}

// NewDataset builds a dataset directly from per-user profiles, for
// programs that assemble data in memory rather than loading edge lists.
// numItems must exceed every item ID referenced; profiles must be sorted
// by ascending ID (use kiff.ProfileFromMap when assembling from maps).
func NewDataset(name string, profiles []Profile, numItems int) (*Dataset, error) {
	d, err := dataset.New(name, profiles, numItems)
	if err != nil {
		return nil, err
	}
	d.EnsureItemProfiles()
	return d, nil
}

// ProfileFromMap builds a well-formed profile from an item→rating map.
// binary discards the ratings.
func ProfileFromMap(m map[uint32]float64, binary bool) Profile {
	return sparse.FromMap(m, binary)
}

// Load parses a whitespace-separated "user item [rating]" edge list.
func Load(r io.Reader, opts LoadOptions) (*Dataset, error) {
	opts.BuildItemProfiles = true
	return dataset.Load(r, opts)
}

// LoadFile is Load over a file path.
func LoadFile(path string, opts LoadOptions) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if opts.Name == "" {
		opts.Name = path
	}
	return Load(f, opts)
}

// WriteDataset serializes a dataset as an edge list that Load round-trips.
func WriteDataset(w io.Writer, d *Dataset) error { return dataset.Write(w, d) }

// WriteGraphBinary serializes a graph in the versioned, checksummed
// binary format (magic KFG1): build once, then serve the saved graph
// from any number of processes via ReadGraphBinary. Similarities are
// stored bit-exactly, so the loaded graph scores identically to the
// in-memory one.
func WriteGraphBinary(w io.Writer, g *Graph) error {
	_, err := g.WriteTo(w)
	return err
}

// ReadGraphBinary decodes a graph written by WriteGraphBinary, verifying
// the checksum and graph invariants. Corrupt input returns an error,
// never panics.
func ReadGraphBinary(r io.Reader) (*Graph, error) { return knngraph.ReadBinary(r) }

// SaveGraph writes the binary graph format to a file.
func SaveGraph(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteGraphBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadGraph reads a file written by SaveGraph.
func LoadGraph(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadGraphBinary(f)
}

// WriteDatasetBinary serializes a dataset in the versioned, checksummed
// binary format (magic KFD1). Unlike the text edge list, ratings are
// stored bit-exactly. The item-profile index is not serialized; it is
// rebuilt lazily on first use after a load (NewIndex, Build and
// NewMaintainer all trigger it).
func WriteDatasetBinary(w io.Writer, d *Dataset) error { return dataset.WriteBinary(w, d) }

// ReadDatasetBinary decodes a dataset written by WriteDatasetBinary,
// verifying the checksum and dataset invariants.
func ReadDatasetBinary(r io.Reader) (*Dataset, error) { return dataset.ReadBinary(r) }

// SaveDataset writes the binary dataset format to a file.
func SaveDataset(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteDatasetBinary(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadDataset reads a file written by SaveDataset.
func LoadDataset(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDatasetBinary(f)
}

// GeneratePreset materializes one of the paper's synthetic dataset
// replicas ("arxiv", "wikipedia", "gowalla", "dblp") at the given scale
// (1 = published size).
func GeneratePreset(name string, scale float64, seed int64) (*Dataset, error) {
	return dataset.Preset(name).Generate(scale, seed)
}

// GenerateMovieLens materializes the ML-1-style dense rating dataset of
// Table IX at the given scale.
func GenerateMovieLens(scale float64, seed int64) (*Dataset, error) {
	return dataset.SynthesizeMovieLens(dataset.DefaultMovieLens(scale, seed))
}

// Toy returns the paper's Figure 2 running example (Alice, Bob, Carl,
// Dave) with the user and item names.
func Toy() (d *Dataset, userNames, itemNames []string) { return dataset.Toy() }

// Profile is a sparse item profile, used for ad-hoc KNN queries.
type Profile = sparse.Vector

// Index answers single-profile KNN queries against a dataset using
// KIFF's counting-phase pruning; see NewIndex.
type Index = core.Index

// NewIndex builds a query index over the dataset. Queries against it
// find the k most similar users to an arbitrary item profile — the
// search and classification workloads of the paper's introduction —
// touching only users that share at least one item with the query.
func NewIndex(d *Dataset, opts Options) (*Index, error) {
	metricName := opts.Metric
	if metricName == "" {
		metricName = "cosine"
	}
	metric, err := similarity.ByName(metricName)
	if err != nil {
		return nil, err
	}
	return core.NewIndex(d, metric), nil
}

// NewViewIndex builds a query index over a frozen dataset view (see
// Snapshot.Dataset). Views always carry item profiles, so construction
// is O(1); the index answers exactly like NewIndex over the dataset the
// view was published from.
func NewViewIndex(v *DatasetView, opts Options) (*Index, error) {
	metricName := opts.Metric
	if metricName == "" {
		metricName = "cosine"
	}
	metric, err := similarity.ByName(metricName)
	if err != nil {
		return nil, err
	}
	return core.NewViewIndex(v, metric), nil
}

// Metrics lists the supported similarity metric names.
func Metrics() []string { return similarity.Names() }
