package kiff

import (
	"math"
	"path/filepath"
	"testing"
)

// saveFixture builds a small graph+dataset pair and saves both, returning
// the paths and the in-memory originals.
func saveFixture(t *testing.T, k int) (gpath, dpath string, d *Dataset, g *Graph) {
	t.Helper()
	d, err := GeneratePreset("wikipedia", 0.02, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(d, Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	gpath = filepath.Join(dir, "graph.kfg")
	dpath = filepath.Join(dir, "data.kfd")
	if err := SaveGraph(gpath, res.Graph); err != nil {
		t.Fatal(err)
	}
	if err := SaveDataset(dpath, d); err != nil {
		t.Fatal(err)
	}
	return gpath, dpath, d, res.Graph
}

// requireSameGraph asserts two graphs agree edge-for-edge with
// bit-identical similarities.
func requireSameGraph(t *testing.T, want, got *Graph) {
	t.Helper()
	if want.K() != got.K() || want.NumUsers() != got.NumUsers() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("graph shape differs: k=%d/%d users=%d/%d edges=%d/%d",
			want.K(), got.K(), want.NumUsers(), got.NumUsers(), want.NumEdges(), got.NumEdges())
	}
	for u := 0; u < want.NumUsers(); u++ {
		a, b := want.Neighbors(uint32(u)), got.Neighbors(uint32(u))
		if len(a) != len(b) {
			t.Fatalf("user %d: %d vs %d neighbors", u, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID || math.Float64bits(a[i].Sim) != math.Float64bits(b[i].Sim) {
				t.Fatalf("user %d neighbor %d: %v vs %v", u, i, a[i], b[i])
			}
		}
	}
}

// TestMappedLoadBitIdentical is the facade-level guarantee of the mmap
// path: a mapped graph/dataset pair answers exactly like the heap-loaded
// pair — same neighbor lists, same recall, same query results.
func TestMappedLoadBitIdentical(t *testing.T) {
	gpath, dpath, d, g := saveFixture(t, 8)

	mg, err := LoadGraphMapped(gpath)
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()
	md, err := LoadDatasetMapped(dpath)
	if err != nil {
		t.Fatal(err)
	}
	defer md.Close()

	hg, err := LoadGraph(gpath)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := LoadDataset(dpath)
	if err != nil {
		t.Fatal(err)
	}

	requireSameGraph(t, g, mg.Graph())
	requireSameGraph(t, hg, mg.Graph())

	opts := Options{K: 8}
	want, err := Recall(d, g, opts, 100)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Recall(md.Dataset(), mg.Graph(), opts, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("mapped recall = %v, in-memory = %v (must be exactly equal)", got, want)
	}

	// Queries through a static snapshot over the mapped pair must match
	// the heap-loaded pair bit for bit.
	ms, err := NewSnapshot(mg.Graph(), md.Dataset(), opts)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := NewSnapshot(hg, hd, opts)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 20; u++ {
		profile := hd.Users[u]
		a, err := ms.Query(profile, 5, 40)
		if err != nil {
			t.Fatal(err)
		}
		b, err := hs.Query(profile, 5, 40)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", u, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID || math.Float64bits(a[i].Sim) != math.Float64bits(b[i].Sim) {
				t.Fatalf("query %d result %d: %v vs %v", u, i, a[i], b[i])
			}
		}
	}
}

// TestNewMaintainerFromGraph: wrapping a loaded checkpoint must reproduce
// the saved graph exactly and leave the maintainer fully operational.
func TestNewMaintainerFromGraph(t *testing.T) {
	gpath, dpath, _, g := saveFixture(t, 8)

	mg, err := LoadGraphMapped(gpath)
	if err != nil {
		t.Fatal(err)
	}
	md, err := LoadDatasetMapped(dpath)
	if err != nil {
		t.Fatal(err)
	}
	defer md.Close()

	m, err := NewMaintainerFromGraph(md.Dataset(), mg.Graph(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Seeding only reads the graph; after construction the mapping can go.
	if err := mg.Close(); err != nil {
		t.Fatal(err)
	}

	s := m.Snapshot()
	if s.Version() != 1 || s.K() != 8 {
		t.Fatalf("first snapshot version=%d k=%d", s.Version(), s.K())
	}
	requireSameGraph(t, g, s.Graph())

	// The maintainer accepts mutations: insert a user, record a rating,
	// rebuild — each publishing consistent snapshots.
	id, err := m.Insert(md.Dataset().Users[3].Clone())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddRating(id, 42, 3); err != nil {
		t.Fatal(err)
	}
	if err := m.Rebuild(nil); err != nil {
		t.Fatal(err)
	}
	s2 := m.Snapshot()
	if s2.NumUsers() != g.NumUsers()+1 {
		t.Fatalf("snapshot has %d users, want %d", s2.NumUsers(), g.NumUsers()+1)
	}
	if err := s2.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s2.Neighbors(id)) == 0 {
		t.Fatal("inserted user has no neighbors")
	}

	// Shape mismatches are rejected up front.
	if _, err := NewMaintainerFromGraph(md.Dataset(), g, Options{K: 5}); err == nil {
		t.Fatal("k mismatch accepted")
	}
	small, err := GeneratePreset("wikipedia", 0.005, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMaintainerFromGraph(small, g, Options{}); err == nil {
		t.Fatal("user-count mismatch accepted")
	}
}

// TestNewSnapshotRejectsMismatch: static snapshots refuse a graph saved
// from a different dataset rather than mis-serving it.
func TestNewSnapshotRejectsMismatch(t *testing.T) {
	_, _, d, g := saveFixture(t, 8)
	small, err := GeneratePreset("wikipedia", 0.005, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSnapshot(g, small, Options{}); err == nil {
		t.Fatal("mismatched snapshot accepted")
	}
	if _, err := NewSnapshot(g, d, Options{Metric: "no-such-metric"}); err == nil {
		t.Fatal("unknown metric accepted")
	}
}
