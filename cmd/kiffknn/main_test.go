package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleEdges = `a x 1
a y 1
b x 1
b z 1
c y 1
c z 1
`

func TestRunStdinToStdout(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-in", "-", "-k", "2"}, strings.NewReader(sampleEdges), &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errOut.String())
	}
	if !strings.Contains(out.String(), " ") || out.Len() == 0 {
		t.Errorf("no graph emitted:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "built k=2 graph") {
		t.Errorf("missing run summary:\n%s", errOut.String())
	}
}

func TestRunFileToFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "edges.tsv")
	outPath := filepath.Join(dir, "graph.tsv")
	if err := os.WriteFile(in, []byte(sampleEdges), 0o644); err != nil {
		t.Fatal(err)
	}
	var errOut bytes.Buffer
	err := run([]string{"-in", in, "-k", "1", "-o", outPath, "-recall-sample", "3"},
		nil, io.Discard, &errOut)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty output graph file")
	}
	if !strings.Contains(errOut.String(), "recall") {
		t.Errorf("recall not reported:\n%s", errOut.String())
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"kiff", "nn-descent", "hyrec", "brute-force"} {
		var out, errOut bytes.Buffer
		err := run([]string{"-in", "-", "-k", "1", "-algo", algo},
			strings.NewReader(sampleEdges), &out, &errOut)
		if err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                             // missing -in
		{"-in", "/nonexistent/path"},   // unreadable file
		{"-in", "-", "-algo", "nope"},  // unknown algorithm
		{"-in", "-", "-metric", "bad"}, // unknown metric
		{"-in", "-", "-k", "0"},        // invalid k
	}
	for i, args := range cases {
		var out, errOut bytes.Buffer
		if err := run(args, strings.NewReader(sampleEdges), &out, &errOut); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestRunSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "edges.tsv")
	saved := filepath.Join(dir, "graph.kfg")
	if err := os.WriteFile(in, []byte(sampleEdges), 0o644); err != nil {
		t.Fatal(err)
	}

	// Build and save; capture the text output for comparison.
	var built, errOut bytes.Buffer
	if err := run([]string{"-in", in, "-k", "2", "-save", saved}, nil, &built, &errOut); err != nil {
		t.Fatalf("build+save: %v\nstderr: %s", err, errOut.String())
	}
	if _, err := os.Stat(saved); err != nil {
		t.Fatalf("saved graph missing: %v", err)
	}

	// Load without -in: construction skipped, identical text output.
	var loaded, errOut2 bytes.Buffer
	if err := run([]string{"-load", saved, "-k", "2"}, nil, &loaded, &errOut2); err != nil {
		t.Fatalf("load: %v\nstderr: %s", err, errOut2.String())
	}
	if !strings.Contains(errOut2.String(), "construction skipped") {
		t.Errorf("load path did not skip construction:\n%s", errOut2.String())
	}
	if built.String() != loaded.String() {
		t.Errorf("loaded graph differs from built graph:\nbuilt:\n%s\nloaded:\n%s", built.String(), loaded.String())
	}

	// Load with -in: recall evaluation against the dataset still works.
	var errOut3 bytes.Buffer
	if err := run([]string{"-load", saved, "-in", in, "-recall-sample", "3"}, nil, io.Discard, &errOut3); err != nil {
		t.Fatalf("load+recall: %v", err)
	}
	if !strings.Contains(errOut3.String(), "recall") {
		t.Errorf("recall not reported on loaded graph:\n%s", errOut3.String())
	}
}

func TestRunLoadErrors(t *testing.T) {
	dir := t.TempDir()
	// Nonexistent file.
	if err := run([]string{"-load", filepath.Join(dir, "missing.kfg")}, nil, io.Discard, io.Discard); err == nil {
		t.Error("missing -load file accepted")
	}
	// Corrupt file.
	bad := filepath.Join(dir, "bad.kfg")
	if err := os.WriteFile(bad, []byte("not a graph"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-load", bad}, nil, io.Discard, io.Discard); err == nil {
		t.Error("corrupt -load file accepted")
	}
	// -recall-sample without a dataset.
	var out bytes.Buffer
	if err := run([]string{"-in", "-", "-k", "1", "-save", filepath.Join(dir, "g.kfg")},
		strings.NewReader(sampleEdges), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-load", filepath.Join(dir, "g.kfg"), "-recall-sample", "2"},
		nil, io.Discard, io.Discard); err == nil {
		t.Error("-recall-sample without -in accepted")
	}
}

func TestRunBinaryFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	weighted := "a x 5\nb x 3\n"
	err := run([]string{"-in", "-", "-k", "1", "-binary"},
		strings.NewReader(weighted), &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	// With -binary the two users have identical profiles: similarity 1.
	if !strings.Contains(out.String(), "1") {
		t.Errorf("unexpected graph:\n%s", out.String())
	}
}
