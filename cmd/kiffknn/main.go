// Command kiffknn builds a KNN graph from an edge-list file and writes it
// as "user neighbor similarity" lines.
//
// Usage:
//
//	kiffknn -in ratings.tsv -k 20 -o graph.tsv
//	kiffknn -in ratings.tsv -k 20 -algo nn-descent -metric jaccard
//	kiffknn -in ratings.tsv -k 20 -recall-sample 500   # also report recall
//
// Build once, serve many: -save writes the built graph in the
// checksummed binary format, and -load skips construction entirely,
// going straight to output and evaluation from a saved graph.
//
//	kiffknn -in ratings.tsv -k 20 -save graph.kfg -o /dev/null
//	kiffknn -load graph.kfg -o graph.tsv
//	kiffknn -in ratings.tsv -load graph.kfg -recall-sample 500
//
// -save-data persists the dataset alongside the graph — the checkpoint
// pair cmd/kiffserve serves:
//
//	kiffknn -in ratings.tsv -k 20 -save graph.kfg -save-data data.kfd -o /dev/null
//	kiffserve -graph graph.kfg -data data.kfd
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"kiff"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "kiffknn: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("kiffknn", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in           = fs.String("in", "", "input edge list ('-' = stdin)")
		out          = fs.String("o", "-", "output path ('-' = stdout)")
		k            = fs.Int("k", 20, "neighborhood size")
		algo         = fs.String("algo", "kiff", "algorithm: "+strings.Join(kiff.Algorithms(), ", "))
		metric       = fs.String("metric", "cosine", "similarity metric: "+strings.Join(kiff.Metrics(), ", "))
		gamma        = fs.Int("gamma", 0, "KIFF candidate budget per iteration (0 = 2k, negative = exhaustive/exact)")
		beta         = fs.Float64("beta", 0, "termination threshold (0 = paper default 0.001, negative = run KIFF to candidate exhaustion/exact)")
		minRating    = fs.Float64("min-rating", 0, "KIFF candidate filter: require ratings ≥ this on shared items")
		bands        = fs.Int("bands", 0, "bucketed: number of minhash bucketings (0 = 4)")
		bucketSize   = fs.Int("bucket-size", 0, "bucketed: maximum users per bucket (0 = 192)")
		sweeps       = fs.Int("sweeps", 0, "bucketed: cross-bucket refinement passes (0 = 2, negative = none)")
		workers      = fs.Int("workers", 0, "worker goroutines (0 = all CPUs)")
		seed         = fs.Int64("seed", 42, "seed for randomized baselines")
		recallSample = fs.Int("recall-sample", 0, "if > 0, report recall estimated on this many users (needs -in)")
		binary       = fs.Bool("binary", false, "ignore the rating column")
		save         = fs.String("save", "", "after building, save the graph in binary format to this path")
		saveData     = fs.String("save-data", "", "save the loaded dataset in binary format to this path (the kiffserve companion of -save)")
		load         = fs.String("load", "", "skip construction: load a binary graph saved with -save")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" && *load == "" {
		fs.Usage()
		return fmt.Errorf("-in or -load is required")
	}

	var (
		ds  *kiff.Dataset
		err error
	)
	if *in == "-" {
		ds, err = kiff.Load(stdin, kiff.LoadOptions{Name: "stdin", Binary: *binary})
	} else if *in != "" {
		ds, err = kiff.LoadFile(*in, kiff.LoadOptions{Binary: *binary})
	}
	if err != nil {
		return err
	}
	if ds != nil {
		fmt.Fprintf(stderr, "kiffknn: loaded %s\n", ds.Stats())
	}

	opts := kiff.Options{
		K:          *k,
		Algorithm:  kiff.Algorithm(*algo),
		Metric:     *metric,
		Gamma:      *gamma,
		Beta:       *beta,
		MinRating:  *minRating,
		Workers:    *workers,
		Seed:       *seed,
		Bands:      *bands,
		BucketSize: *bucketSize,
		Sweeps:     *sweeps,
	}

	var g *kiff.Graph
	if *load != "" {
		g, err = kiff.LoadGraph(*load)
		if err != nil {
			return fmt.Errorf("load graph: %w", err)
		}
		fmt.Fprintf(stderr, "kiffknn: loaded k=%d graph over %d users from %s (construction skipped)\n",
			g.K(), g.NumUsers(), *load)
	} else {
		res, err := kiff.Build(ds, opts)
		if err != nil {
			return err
		}
		g = res.Graph
		fmt.Fprintf(stderr, "kiffknn: %s built k=%d graph in %v (%d similarity evals, scan rate %.3f%%, %d iterations)\n",
			res.Run.Algorithm, *k, res.Run.WallTime, res.Run.SimEvals, 100*res.Run.ScanRate(), res.Run.Iterations)
	}

	if *save != "" {
		if err := kiff.SaveGraph(*save, g); err != nil {
			return fmt.Errorf("save graph: %w", err)
		}
		fmt.Fprintf(stderr, "kiffknn: graph saved to %s\n", *save)
	}
	if *saveData != "" {
		if ds == nil {
			return fmt.Errorf("-save-data needs the dataset: pass -in")
		}
		if err := kiff.SaveDataset(*saveData, ds); err != nil {
			return fmt.Errorf("save dataset: %w", err)
		}
		fmt.Fprintf(stderr, "kiffknn: dataset saved to %s\n", *saveData)
	}

	if *recallSample > 0 {
		if ds == nil {
			return fmt.Errorf("-recall-sample needs the dataset: pass -in alongside -load")
		}
		recall, err := kiff.Recall(ds, g, opts, *recallSample)
		if err != nil {
			return fmt.Errorf("recall: %w", err)
		}
		fmt.Fprintf(stderr, "kiffknn: recall ≈ %.3f (sampled over %d users)\n", recall, *recallSample)
	}

	w := stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return g.Write(w)
}
