// Command kiffserve is the HTTP serving front-end: it loads (or
// cold-builds) a KNN graph, wraps it in the lock-free snapshot serving
// path, and exposes neighbor lookups, profile queries and mutations over
// HTTP (see internal/server for the endpoint contract).
//
// Serve a saved checkpoint, zero-copy via mmap (the intended production
// flow — build once with kiffknn -save, serve many):
//
//	kiffknn -in ratings.tsv -k 20 -save graph.kfg -o /dev/null
//	kiffserve -graph graph.kfg -data data.kfd -addr :8080
//
// Flags select the load path (-mmap=false forces the heap decoder), a
// read-only mode (-readonly skips the Maintainer entirely; mutation
// endpoints return 403), and a cold build straight from an edge list
// (-in ratings.tsv) for small datasets and smoke tests.
//
// Sharded serving: -shards N partitions the dataset across N independent
// maintainers behind the same HTTP API (inserts and rebuilds parallelize
// across shards; /stats reports per-shard counters). -save-pool DIR
// checkpoints the pool (per-shard graph.i.kfg/data.i.kfd plus a
// manifest) after construction, and -pool DIR restarts from such a
// checkpoint without rebuilding:
//
//	kiffserve -data data.kfd -shards 4 -save-pool pool/ -addr :8080
//	kiffserve -pool pool/ -addr :8080
//
// Crash-lossless serving: -wal DIR appends every mutation to a
// write-ahead log (one per shard) before applying it, so an
// acknowledged write survives even a SIGKILL. On start, when
// -checkpoint is also set, the server picks the newest complete
// checkpoint generation itself and replays the log on top of it; a
// torn final record (power cut mid-append) is truncated. POST
// /checkpoint rotates the logs; -wal-sync trades fsync-per-append
// durability against throughput:
//
//	kiffserve -in ratings.tsv -checkpoint ckpts/ -wal wal/ -addr :8080
//	# ... mutations, maybe a crash ...
//	kiffserve -in ratings.tsv -checkpoint ckpts/ -wal wal/ -addr :8080  # replays, loses nothing
//
// Production hardening (all opt-in; see docs/OPERATIONS.md): -api-keys
// FILE enables API-key authentication with read/write scopes (401/403),
// -rate-limit and -rate-burst add per-key token-bucket admission
// control (429 + Retry-After), and -log-requests emits one structured
// JSON access-log line per request. GET /metrics always serves the
// Prometheus text-format meters:
//
//	kiffserve -in ratings.tsv -api-keys keys.txt -rate-limit 100 -rate-burst 200 -addr :8080
//	curl -H 'Authorization: Bearer <key>' localhost:8080/metrics
//
//	curl localhost:8080/neighbors/42
//	curl -X POST localhost:8080/query -d '{"profile":{"7":3,"42":5},"k":10}'
//	curl -X POST localhost:8080/users -d '{"profile":{"42":5}}'
//	curl -X POST localhost:8080/ratings -d '{"user":3,"item":42,"rating":4}'
//	curl localhost:8080/stats
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"kiff"
	"kiff/internal/server"
	"kiff/internal/shard"
	"kiff/internal/wal"
)

// walFileName is the unsharded write-ahead log file inside -wal DIR
// (sharded mode uses shard.WalFile names, one log per shard).
const walFileName = "wal.kfl"

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "kiffserve: %v\n", err)
		os.Exit(1)
	}
}

// run builds the serving stack and blocks until ctx is canceled or the
// listener fails. When ready is non-nil the bound address is sent on it
// once the listener is up (the in-process test hook).
func run(ctx context.Context, args []string, stderr io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("kiffserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		graph     = fs.String("graph", "", "binary graph checkpoint (kiffknn -save); requires -data")
		data      = fs.String("data", "", "binary dataset checkpoint (SaveDataset)")
		in        = fs.String("in", "", "edge list to load and cold-build from (alternative to -graph/-data)")
		binary    = fs.Bool("binary", false, "ignore the rating column of -in")
		useMmap   = fs.Bool("mmap", true, "load checkpoints through the zero-copy mmap path")
		readonly  = fs.Bool("readonly", false, "serve a static snapshot; mutation endpoints return 403")
		k         = fs.Int("k", 20, "neighborhood size for cold builds (checkpoints carry their own)")
		metric    = fs.String("metric", "cosine", "similarity metric: "+strings.Join(kiff.Metrics(), ", "))
		budget    = fs.Int("budget", 0, "default similarity-eval budget per query (0 = exact)")
		queue     = fs.Int("queue", 256, "mutation queue depth (full queue = backpressure)")
		batch     = fs.Int("batch", 64, "max mutations applied per writer batch")
		ckptDir   = fs.String("checkpoint", "", "enable POST /checkpoint into fresh subdirectories of this directory; a graceful shutdown saves a final checkpoint under <dir>/final")
		workers   = fs.Int("workers", 0, "cold-build worker goroutines (0 = all CPUs)")
		shards    = fs.Int("shards", 0, "partition users across this many maintainers (0 = unsharded)")
		pool      = fs.String("pool", "", "sharded checkpoint directory to restart from (see -save-pool)")
		savePool  = fs.String("save-pool", "", "checkpoint the sharded pool to this directory after construction")
		walDir    = fs.String("wal", "", "write-ahead log directory: append every mutation before applying it, replay on start (crash-lossless mutations)")
		walSync   = fs.String("wal-sync", "always", "WAL fsync policy: always, never, or a flush interval like 100ms")
		apiKeys   = fs.String("api-keys", "", "API keys file (scope:key[:burst[:rate]] per line); enables authentication on every endpoint except /healthz")
		rateRPS   = fs.Float64("rate-limit", 0, "per-key token-bucket rate limit in requests/second (0 = unlimited)")
		rateBurst = fs.Int("rate-burst", 0, "token-bucket capacity when -rate-limit is set (0 = same as -rate-limit)")
		logReqs   = fs.Bool("log-requests", false, "emit one structured JSON access-log line per request to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rateBurst > 0 && *rateRPS <= 0 {
		return fmt.Errorf("-rate-burst requires -rate-limit > 0")
	}
	opts := kiff.Options{K: *k, Metric: *metric, Workers: *workers}
	faults := faultsFromEnv(stderr)

	// --- Write-ahead logging ----------------------------------------------
	walled := *walDir != ""
	var wopts wal.Options
	if walled {
		if *readonly {
			return fmt.Errorf("-wal requires a mutable server (drop -readonly)")
		}
		if *savePool != "" {
			// Pool.Save rotates the shard logs against the saved directory,
			// but the boot scan only considers -checkpoint generations — a
			// rotation against -save-pool would strand the discarded
			// records. Checkpoint through the server instead.
			return fmt.Errorf("-save-pool cannot be combined with -wal (checkpoint via POST /checkpoint instead)")
		}
		pol, iv, perr := wal.ParseSyncPolicy(*walSync)
		if perr != nil {
			return fmt.Errorf("-wal-sync: %w", perr)
		}
		wopts = wal.Options{Sync: pol, SyncInterval: iv, TestHook: walTearHook(faults)}
		if err := os.MkdirAll(*walDir, 0o755); err != nil {
			return fmt.Errorf("-wal: %w", err)
		}
	}

	// --- Sharded modes ---------------------------------------------------
	sharded := *pool != "" || *shards > 1
	if sharded {
		if *readonly {
			return fmt.Errorf("-readonly is not supported in sharded mode (a pool always carries its maintainers)")
		}
		if *graph != "" {
			return fmt.Errorf("-graph is not used in sharded mode: the pool builds per-shard graphs (restart from -pool instead)")
		}
	} else if *savePool != "" {
		return fmt.Errorf("-save-pool requires -shards or -pool")
	}

	// --- Serving configuration ------------------------------------------
	cfg := server.Config{
		QueryBudget:   *budget,
		QueueDepth:    *queue,
		MaxBatch:      *batch,
		CheckpointDir: *ckptDir,
		Faults:        faults,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		},
		RateLimit:   *rateRPS,
		RateBurst:   *rateBurst,
		LogRequests: *logReqs,
	}
	if *apiKeys != "" {
		keys, kerr := server.LoadAPIKeys(*apiKeys)
		if kerr != nil {
			return fmt.Errorf("-api-keys: %w", kerr)
		}
		cfg.APIKeys = keys
		fmt.Fprintf(stderr, "kiffserve: authentication enabled (%d keys)\n", len(keys))
	}
	if *readonly && *ckptDir != "" {
		return fmt.Errorf("-checkpoint requires a mutable server (drop -readonly)")
	}

	// --- WAL resume: newest checkpoint + log replay ----------------------
	// With both -wal and -checkpoint, the server owns its restart story:
	// it picks the newest complete checkpoint generation itself and
	// replays the log above the horizon that checkpoint recorded. The
	// -graph/-data/-in/-pool source flags describe the cold start only and
	// are ignored once a checkpoint exists — the checkpoint is strictly
	// newer than any of them.
	if walled && *ckptDir != "" {
		if latest, ok := server.LatestCheckpoint(*ckptDir); ok {
			poolCkpt := fileExists(filepath.Join(latest, shard.ManifestFile))
			if poolCkpt && !sharded {
				return fmt.Errorf("latest checkpoint %s is sharded; restart with the same -shards flag", latest)
			}
			if !poolCkpt && sharded {
				return fmt.Errorf("latest checkpoint %s is unsharded; drop -shards/-pool to resume it", latest)
			}
			if poolCkpt {
				p, lerr := kiff.LoadShardedMaintainerWAL(latest, *walDir, kiff.Options{Metric: *metric, Workers: *workers}, wopts)
				if lerr != nil {
					return fmt.Errorf("resume pool %s: %w", latest, lerr)
				}
				fmt.Fprintf(stderr, "kiffserve: resumed pool from %s + wal replay: %d shards, %d users, k=%d\n",
					latest, p.NumShards(), p.NumUsers(), p.K())
				cfg.Pool = p
				return serve(ctx, cfg, *addr, stderr, ready)
			}
			meta, merr := server.ReadCheckpointMeta(latest)
			if merr != nil {
				return merr
			}
			var (
				g   *kiff.Graph
				rds *kiff.Dataset
			)
			if *useMmap {
				mg, e := kiff.LoadGraphMapped(filepath.Join(latest, server.GraphCheckpointFile))
				if e != nil {
					return fmt.Errorf("resume graph: %w", e)
				}
				g = mg.Graph()
				md, e := kiff.LoadDatasetMapped(filepath.Join(latest, server.DataCheckpointFile))
				if e != nil {
					return fmt.Errorf("resume dataset: %w", e)
				}
				rds = md.Dataset()
			} else {
				var e error
				if g, e = kiff.LoadGraph(filepath.Join(latest, server.GraphCheckpointFile)); e != nil {
					return fmt.Errorf("resume graph: %w", e)
				}
				if rds, e = kiff.LoadDataset(filepath.Join(latest, server.DataCheckpointFile)); e != nil {
					return fmt.Errorf("resume dataset: %w", e)
				}
			}
			o := opts
			o.K = 0 // adopt the checkpoint's k
			m, nerr := kiff.NewMaintainerFromGraph(rds, g, o)
			if nerr != nil {
				return fmt.Errorf("resume %s: %w", latest, nerr)
			}
			so := wopts
			so.FromLSN = meta.WalLSN
			stats, werr := m.OpenWAL(filepath.Join(*walDir, walFileName), so)
			if werr != nil {
				return fmt.Errorf("resume wal: %w", werr)
			}
			fmt.Fprintf(stderr, "kiffserve: resumed from %s (wal horizon %d): replayed %d records, truncated %d torn bytes\n",
				latest, meta.WalLSN, stats.Replayed, stats.TruncatedBytes)
			cfg.Maintainer = m
			return serve(ctx, cfg, *addr, stderr, ready)
		}
	}

	// --- Assemble the dataset -------------------------------------------
	var (
		ds  *kiff.Dataset
		err error
	)
	switch {
	case *pool != "":
		// The sharded checkpoint carries its own per-shard datasets.
	case *data != "" && *useMmap:
		md, merr := kiff.LoadDatasetMapped(*data)
		if merr != nil {
			return fmt.Errorf("load dataset: %w", merr)
		}
		// The mapping lives for the process lifetime; the kernel reclaims
		// it at exit.
		ds = md.Dataset()
		fmt.Fprintf(stderr, "kiffserve: dataset %s loaded (mmap=%v)\n", *data, md.Mapped())
	case *data != "":
		if ds, err = kiff.LoadDataset(*data); err != nil {
			return fmt.Errorf("load dataset: %w", err)
		}
		fmt.Fprintf(stderr, "kiffserve: dataset %s loaded (heap)\n", *data)
	case *in != "":
		if ds, err = kiff.LoadFile(*in, kiff.LoadOptions{Binary: *binary}); err != nil {
			return fmt.Errorf("load edge list: %w", err)
		}
		fmt.Fprintf(stderr, "kiffserve: loaded %s\n", ds.Stats())
	default:
		fs.Usage()
		return fmt.Errorf("a data source is required: -graph/-data checkpoints or -in edge list")
	}

	// --- Assemble the graph + serving source ----------------------------
	if sharded {
		var p *kiff.ShardedMaintainer
		if *pool != "" {
			popts := kiff.Options{Metric: *metric, Workers: *workers}
			switch {
			case walled:
				// The WAL loader replays per-shard logs during population;
				// it loads on the heap (no mapped variant).
				p, err = kiff.LoadShardedMaintainerWAL(*pool, *walDir, popts, wopts)
			case *useMmap:
				p, err = kiff.LoadShardedMaintainerMapped(*pool, popts)
			default:
				p, err = kiff.LoadShardedMaintainer(*pool, popts)
			}
			if err != nil {
				return fmt.Errorf("load pool: %w", err)
			}
			fmt.Fprintf(stderr, "kiffserve: pool %s loaded: %d shards, %d users, k=%d (mmap=%v, wal=%v, construction skipped)\n",
				*pool, p.NumShards(), p.NumUsers(), p.K(), *useMmap && !walled, walled)
		} else {
			start := time.Now()
			if walled {
				// Attaches one log per shard and replays any records a
				// previous un-checkpointed run left behind (cold builds are
				// deterministic in the input, so the replay base matches).
				p, err = kiff.NewShardedMaintainerWAL(ds, *shards, opts, *walDir, wopts)
			} else {
				p, err = kiff.NewShardedMaintainer(ds, *shards, opts)
			}
			if err != nil {
				return fmt.Errorf("sharded cold build: %w", err)
			}
			fmt.Fprintf(stderr, "kiffserve: cold-built %d-shard pool over %d users (k=%d, wal=%v) in %v\n",
				p.NumShards(), p.NumUsers(), p.K(), walled, time.Since(start))
		}
		if *savePool != "" {
			if err := p.Save(*savePool); err != nil {
				return fmt.Errorf("save pool: %w", err)
			}
			fmt.Fprintf(stderr, "kiffserve: pool checkpointed to %s\n", *savePool)
		}
		cfg.Pool = p
		return serve(ctx, cfg, *addr, stderr, ready)
	}

	var g *kiff.Graph
	if *graph != "" {
		if *useMmap {
			mg, merr := kiff.LoadGraphMapped(*graph)
			if merr != nil {
				return fmt.Errorf("load graph: %w", merr)
			}
			g = mg.Graph()
			fmt.Fprintf(stderr, "kiffserve: graph %s loaded: k=%d, %d users, %d edges (mmap=%v, construction skipped)\n",
				*graph, g.K(), g.NumUsers(), g.NumEdges(), mg.Mapped())
		} else {
			if g, err = kiff.LoadGraph(*graph); err != nil {
				return fmt.Errorf("load graph: %w", err)
			}
			fmt.Fprintf(stderr, "kiffserve: graph %s loaded: k=%d, %d users, %d edges (heap, construction skipped)\n",
				*graph, g.K(), g.NumUsers(), g.NumEdges())
		}
		opts.K = 0 // adopt the checkpoint's k
	}
	switch {
	case *readonly && g == nil:
		start := time.Now()
		res, berr := kiff.Build(ds, opts)
		if berr != nil {
			return fmt.Errorf("cold build: %w", berr)
		}
		g = res.Graph
		fmt.Fprintf(stderr, "kiffserve: cold-built k=%d graph in %v (%d similarity evals)\n",
			g.K(), time.Since(start), res.Run.SimEvals)
		fallthrough
	case *readonly:
		snap, serr := kiff.NewSnapshot(g, ds, opts)
		if serr != nil {
			return serr
		}
		cfg.Static = snap
		fmt.Fprintf(stderr, "kiffserve: read-only snapshot over %d users\n", snap.NumUsers())
	case g != nil:
		m, merr := kiff.NewMaintainerFromGraph(ds, g, opts)
		if merr != nil {
			return merr
		}
		cfg.Maintainer = m
		fmt.Fprintf(stderr, "kiffserve: maintainer seeded from checkpoint (no rebuild)\n")
	default:
		start := time.Now()
		m, merr := kiff.NewMaintainer(ds, opts)
		if merr != nil {
			return fmt.Errorf("cold build: %w", merr)
		}
		cfg.Maintainer = m
		fmt.Fprintf(stderr, "kiffserve: cold-built and wrapped k=%d graph in %v\n", *k, time.Since(start))
	}
	if walled && cfg.Maintainer != nil {
		// Cold start with a log: replay whatever a previous
		// un-checkpointed run left in it (the build above is deterministic
		// in the source flags, so it matches the state the log was written
		// against), then log everything from here on.
		stats, werr := cfg.Maintainer.OpenWAL(filepath.Join(*walDir, walFileName), wopts)
		if werr != nil {
			return fmt.Errorf("wal: %w", werr)
		}
		fmt.Fprintf(stderr, "kiffserve: wal attached: replayed %d records, truncated %d torn bytes\n",
			stats.Replayed, stats.TruncatedBytes)
	}

	return serve(ctx, cfg, *addr, stderr, ready)
}

// fileExists reports whether path exists (any stat-able entry).
func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// serve runs the HTTP front-end over the assembled serving source until
// ctx is canceled or the listener fails.
func serve(ctx context.Context, cfg server.Config, addr string, stderr io.Writer, ready chan<- string) error {
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}

	// --- Serve ----------------------------------------------------------
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "kiffserve: serving on http://%s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- httpSrv.Shutdown(sctx)
	}()
	err = httpSrv.Serve(ln)
	if err == http.ErrServerClosed {
		// Graceful path: wait for in-flight requests, then stop the writer.
		err = <-shutdownErr
	}
	if cerr := srv.Close(); err == nil {
		err = cerr
	}
	switch {
	case cfg.Maintainer != nil && cfg.Maintainer.WALAttached():
		// The log already holds every acknowledged mutation (append →
		// apply → ack), so a logged server takes no final checkpoint —
		// the next boot replays instead. SaveFinal would in fact refuse:
		// saving rotates the log against a directory the boot scan never
		// considers.
		if cerr := cfg.Maintainer.CloseWAL(); err == nil {
			err = cerr
		}
		fmt.Fprintf(stderr, "kiffserve: wal closed (boot replays it; no final checkpoint needed)\n")
	case cfg.Pool != nil && cfg.Pool.WALAttached():
		if cerr := cfg.Pool.CloseWAL(); err == nil {
			err = cerr
		}
		fmt.Fprintf(stderr, "kiffserve: wal closed (boot replays it; no final checkpoint needed)\n")
	case cfg.CheckpointDir != "" && cfg.Static == nil:
		// Close flushed every accepted mutation, so this final checkpoint
		// contains everything the server acknowledged — the reason a
		// SIGTERM never loses writes when -checkpoint is set.
		final := filepath.Join(cfg.CheckpointDir, "final")
		if serr := srv.SaveFinal(final); serr != nil {
			if err == nil {
				err = fmt.Errorf("final checkpoint: %w", serr)
			}
		} else {
			fmt.Fprintf(stderr, "kiffserve: final checkpoint saved to %s\n", final)
		}
	}
	fmt.Fprintf(stderr, "kiffserve: shut down\n")
	return err
}
