package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"kiff"
	"kiff/internal/server"
)

// queryResults posts one fixed query and returns the raw "results"
// field — the restart-equivalence comparison unit (full bodies differ
// by snapshot version across restarts).
func queryResults(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Post(url+"/query", "application/json",
		strings.NewReader(`{"profile":{"3":2,"8":1},"k":4}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query %s: %d: %s", url, resp.StatusCode, body)
	}
	var out struct {
		Results json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return string(out.Results)
}

// TestServeGracefulFinalCheckpoint is the shutdown-flush regression
// test at the binary level: mutations acknowledged before SIGTERM must
// be present in the final checkpoint the graceful shutdown writes.
func TestServeGracefulFinalCheckpoint(t *testing.T) {
	ckptDir := t.TempDir()
	url, shutdown := boot(t, "-in", writeEdgeList(t), "-k", "5", "-checkpoint", ckptDir)

	resp, err := http.Post(url+"/users", "application/json", strings.NewReader(`{"profile":{"1":4,"9":2}}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("insert: %d: %s", resp.StatusCode, body)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	final := filepath.Join(ckptDir, "final")
	d, err := kiff.LoadDataset(filepath.Join(final, server.DataCheckpointFile))
	if err != nil {
		t.Fatalf("final checkpoint dataset: %v", err)
	}
	if d.NumUsers() != 31 { // 30 from the edge list + the acknowledged insert
		t.Fatalf("final checkpoint has %d users, want 31", d.NumUsers())
	}
	g, err := kiff.LoadGraph(filepath.Join(final, server.GraphCheckpointFile))
	if err != nil {
		t.Fatalf("final checkpoint graph: %v", err)
	}
	if g.NumUsers() != 31 {
		t.Fatalf("final checkpoint graph covers %d users, want 31", g.NumUsers())
	}

	// The final checkpoint restarts and answers.
	url2, shutdown2 := boot(t,
		"-graph", filepath.Join(final, server.GraphCheckpointFile),
		"-data", filepath.Join(final, server.DataCheckpointFile))
	if got := queryResults(t, url2); got == "" || got == "null" {
		t.Fatalf("restarted query results = %q", got)
	}
	if err := shutdown2(); err != nil {
		t.Fatal(err)
	}
}

// TestServeCheckpointEndpointRestart: POST /checkpoint on a live server
// produces a directory a fresh kiffserve restarts from with identical
// /query answers — unsharded (-graph/-data) and sharded (-pool) alike.
func TestServeCheckpointEndpointRestart(t *testing.T) {
	edges := writeEdgeList(t)

	t.Run("unsharded", func(t *testing.T) {
		ckptDir := t.TempDir()
		url, shutdown := boot(t, "-in", edges, "-k", "5", "-checkpoint", ckptDir)
		want := queryResults(t, url)

		resp, err := http.Post(url+"/checkpoint", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		var ck struct {
			Dir string `json:"dir"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&ck); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || ck.Dir == "" {
			t.Fatalf("POST /checkpoint: %d, dir %q", resp.StatusCode, ck.Dir)
		}
		if err := shutdown(); err != nil {
			t.Fatal(err)
		}

		url2, shutdown2 := boot(t,
			"-graph", filepath.Join(ck.Dir, server.GraphCheckpointFile),
			"-data", filepath.Join(ck.Dir, server.DataCheckpointFile))
		if got := queryResults(t, url2); got != want {
			t.Fatalf("restarted /query diverged\n got: %s\nwant: %s", got, want)
		}
		if err := shutdown2(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("sharded", func(t *testing.T) {
		ckptDir := t.TempDir()
		url, shutdown := boot(t, "-in", edges, "-k", "5", "-shards", "4", "-checkpoint", ckptDir)
		want := queryResults(t, url)

		resp, err := http.Post(url+"/checkpoint", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		var ck struct {
			Dir string `json:"dir"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&ck); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || ck.Dir == "" {
			t.Fatalf("POST /checkpoint: %d, dir %q", resp.StatusCode, ck.Dir)
		}
		if err := shutdown(); err != nil {
			t.Fatal(err)
		}

		url2, shutdown2 := boot(t, "-pool", ck.Dir)
		if got := queryResults(t, url2); got != want {
			t.Fatalf("restarted pool /query diverged\n got: %s\nwant: %s", got, want)
		}
		if err := shutdown2(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestServeCheckpointFlagValidation(t *testing.T) {
	var stderr bytes.Buffer
	if err := run(context.Background(), []string{"-in", "/x", "-readonly", "-checkpoint", "/tmp/c"}, &stderr, nil); err == nil {
		t.Fatal("-checkpoint with -readonly accepted")
	}
}
