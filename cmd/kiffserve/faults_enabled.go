//go:build faultinject

package main

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"kiff/internal/server"
)

// faultsFromEnv wires the fault-injection surface into a binary built
// with the faultinject tag — and only when KIFFSERVE_FAULTS is also set,
// so even a test build serves clean unless the harness asks. Accepted
// values:
//
//	KIFFSERVE_FAULTS=1                                knobs off, /faults endpoint live
//	KIFFSERVE_FAULTS=hold=1,batch_delay=5ms,publish_stall=2ms
//
// Durations use time.ParseDuration syntax; hold takes 0/1/true/false.
// A malformed spec is fatal at startup rather than silently ignored —
// a chaos run with a typo'd fault plan must not pass vacuously.
func faultsFromEnv(stderr io.Writer) *server.Faults {
	spec := os.Getenv("KIFFSERVE_FAULTS")
	if spec == "" {
		return nil
	}
	f := &server.Faults{}
	if spec != "1" {
		for _, kv := range strings.Split(spec, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				fatalFaultSpec(stderr, kv, "expected key=value")
			}
			switch key {
			case "hold":
				b, err := strconv.ParseBool(val)
				if err != nil {
					fatalFaultSpec(stderr, kv, err.Error())
				}
				f.SetHold(b)
			case "batch_delay":
				f.SetBatchDelay(parseFaultDuration(stderr, kv, val))
			case "publish_stall":
				f.SetPublishStall(parseFaultDuration(stderr, kv, val))
			default:
				fatalFaultSpec(stderr, kv, "unknown knob")
			}
		}
	}
	fmt.Fprintf(stderr, "kiffserve: fault injection enabled (KIFFSERVE_FAULTS=%s)\n", spec)
	return f
}

func parseFaultDuration(stderr io.Writer, kv, val string) time.Duration {
	d, err := time.ParseDuration(val)
	if err != nil || d < 0 {
		fatalFaultSpec(stderr, kv, "expected a non-negative duration")
	}
	return d
}

func fatalFaultSpec(stderr io.Writer, kv, why string) {
	fmt.Fprintf(stderr, "kiffserve: bad KIFFSERVE_FAULTS entry %q: %s\n", kv, why)
	os.Exit(2)
}

// walTearHook turns the /faults wal_tear arming into a mid-append power
// cut: when armed, the next write-ahead-log append writes only the first
// half of its frame, flushes that torn prefix to disk, and kills the
// process without acknowledging anything. The restarted server must
// truncate exactly that frame (torn-tail recovery) and lose nothing that
// was acknowledged — the hardest case the zero-loss chaos oracle checks.
// Lives behind the faultinject tag: release builds have no hook.
func walTearHook(f *server.Faults) func(file *os.File, frame []byte) bool {
	if f == nil {
		return nil
	}
	return func(file *os.File, frame []byte) bool {
		if !f.TakeWALTear() {
			return false
		}
		_, _ = file.Write(frame[:len(frame)/2])
		_ = file.Sync()
		os.Exit(3)
		return true // unreachable
	}
}
