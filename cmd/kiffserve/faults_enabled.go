//go:build faultinject

package main

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"kiff/internal/server"
)

// faultsFromEnv wires the fault-injection surface into a binary built
// with the faultinject tag — and only when KIFFSERVE_FAULTS is also set,
// so even a test build serves clean unless the harness asks. Accepted
// values:
//
//	KIFFSERVE_FAULTS=1                                knobs off, /faults endpoint live
//	KIFFSERVE_FAULTS=hold=1,batch_delay=5ms,publish_stall=2ms
//
// Durations use time.ParseDuration syntax; hold takes 0/1/true/false.
// A malformed spec is fatal at startup rather than silently ignored —
// a chaos run with a typo'd fault plan must not pass vacuously.
func faultsFromEnv(stderr io.Writer) *server.Faults {
	spec := os.Getenv("KIFFSERVE_FAULTS")
	if spec == "" {
		return nil
	}
	f := &server.Faults{}
	if spec != "1" {
		for _, kv := range strings.Split(spec, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				fatalFaultSpec(stderr, kv, "expected key=value")
			}
			switch key {
			case "hold":
				b, err := strconv.ParseBool(val)
				if err != nil {
					fatalFaultSpec(stderr, kv, err.Error())
				}
				f.SetHold(b)
			case "batch_delay":
				f.SetBatchDelay(parseFaultDuration(stderr, kv, val))
			case "publish_stall":
				f.SetPublishStall(parseFaultDuration(stderr, kv, val))
			default:
				fatalFaultSpec(stderr, kv, "unknown knob")
			}
		}
	}
	fmt.Fprintf(stderr, "kiffserve: fault injection enabled (KIFFSERVE_FAULTS=%s)\n", spec)
	return f
}

func parseFaultDuration(stderr io.Writer, kv, val string) time.Duration {
	d, err := time.ParseDuration(val)
	if err != nil || d < 0 {
		fatalFaultSpec(stderr, kv, "expected a non-negative duration")
	}
	return d
}

func fatalFaultSpec(stderr io.Writer, kv, why string) {
	fmt.Fprintf(stderr, "kiffserve: bad KIFFSERVE_FAULTS entry %q: %s\n", kv, why)
	os.Exit(2)
}
