package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kiff"
)

// writeEdgeList materializes a small deterministic edge list.
func writeEdgeList(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	for u := 0; u < 30; u++ {
		for j := 0; j < 4; j++ {
			fmt.Fprintf(&sb, "%d %d %d\n", u, (u*3+j*5)%17, 1+(u+j)%5)
		}
	}
	path := filepath.Join(t.TempDir(), "ratings.tsv")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// boot starts run() on an ephemeral port and returns the base URL and a
// shutdown func that waits for a clean exit.
func boot(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	var stderr bytes.Buffer
	go func() {
		errc <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), &stderr, ready)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, func() error {
			cancel()
			select {
			case err := <-errc:
				return err
			case <-time.After(10 * time.Second):
				return fmt.Errorf("server did not shut down")
			}
		}
	case err := <-errc:
		cancel()
		t.Fatalf("server exited before ready: %v\nstderr: %s", err, stderr.String())
		return "", nil
	case <-time.After(60 * time.Second):
		cancel()
		t.Fatalf("server never became ready\nstderr: %s", stderr.String())
		return "", nil
	}
}

func TestServeColdBuildLifecycle(t *testing.T) {
	url, shutdown := boot(t, "-in", writeEdgeList(t), "-k", "5")

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Users  int    `json:"users"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Users != 30 {
		t.Fatalf("healthz = %+v", health)
	}

	q := `{"profile":{"3":2,"8":1},"k":3}`
	resp, err = http.Post(url+"/query", "application/json", strings.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d: %s", resp.StatusCode, body)
	}

	resp, err = http.Post(url+"/users", "application/json", strings.NewReader(`{"profile":{"1":4}}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("insert: %d: %s", resp.StatusCode, body)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServeCheckpointReadonly drives the intended production flow: save a
// checkpoint pair, serve it mmap-loaded and read-only, and verify reads
// work while mutations are refused.
func TestServeCheckpointReadonly(t *testing.T) {
	d, err := kiff.GeneratePreset("wikipedia", 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := kiff.Build(d, kiff.Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.kfg")
	dpath := filepath.Join(dir, "d.kfd")
	if err := kiff.SaveGraph(gpath, res.Graph); err != nil {
		t.Fatal(err)
	}
	if err := kiff.SaveDataset(dpath, d); err != nil {
		t.Fatal(err)
	}

	url, shutdown := boot(t, "-graph", gpath, "-data", dpath, "-readonly")

	resp, err := http.Get(url + "/neighbors/0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("neighbors: %d", resp.StatusCode)
	}
	resp, err = http.Post(url+"/users", "application/json", strings.NewReader(`{"profile":{"1":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("read-only insert: %d, want 403", resp.StatusCode)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestServeFlagValidation(t *testing.T) {
	var stderr bytes.Buffer
	if err := run(context.Background(), nil, &stderr, nil); err == nil {
		t.Fatal("no data source accepted")
	}
	if err := run(context.Background(), []string{"-graph", "/does/not/exist.kfg", "-data", "/does/not/exist.kfd"}, &stderr, nil); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}

// TestServeShardedLifecycle covers the -shards cold build, -save-pool
// checkpointing, and the -pool restart path, asserting the sharded
// server answers /query identically to the unsharded one over the same
// data and that /stats carries per-shard counters.
func TestServeShardedLifecycle(t *testing.T) {
	edges := writeEdgeList(t)
	poolDir := filepath.Join(t.TempDir(), "pool")

	single, shutdownSingle := boot(t, "-in", edges, "-k", "5")
	sharded, shutdownSharded := boot(t, "-in", edges, "-k", "5", "-shards", "4", "-save-pool", poolDir)

	q := `{"profile":{"3":2,"8":1},"k":4}`
	queryBody := func(url string) string {
		t.Helper()
		resp, err := http.Post(url+"/query", "application/json", strings.NewReader(q))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %s: %d: %s", url, resp.StatusCode, body)
		}
		var out struct {
			Results json.RawMessage `json:"results"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		return string(out.Results)
	}
	if got, want := queryBody(sharded), queryBody(single); got != want {
		t.Fatalf("sharded /query diverged\n got: %s\nwant: %s", got, want)
	}

	var stats struct {
		Shards []struct {
			Users int `json:"users"`
		} `json:"shards"`
	}
	resp, err := http.Get(sharded + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(stats.Shards) != 4 {
		t.Fatalf("/stats shards = %d entries, want 4", len(stats.Shards))
	}
	total := 0
	for _, sh := range stats.Shards {
		total += sh.Users
	}
	if total != 30 {
		t.Fatalf("per-shard users sum to %d, want 30", total)
	}

	if err := shutdownSharded(); err != nil {
		t.Fatal(err)
	}
	if err := shutdownSingle(); err != nil {
		t.Fatal(err)
	}

	// Restart from the saved pool checkpoint: same answers, still mutable.
	restarted, shutdownRestarted := boot(t, "-pool", poolDir)
	single2, shutdownSingle2 := boot(t, "-in", edges, "-k", "5")
	if got, want := queryBody(restarted), queryBody(single2); got != want {
		t.Fatalf("restarted pool /query diverged\n got: %s\nwant: %s", got, want)
	}
	resp, err = http.Post(restarted+"/users", "application/json", strings.NewReader(`{"profile":{"1":4}}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("insert into restarted pool: %d: %s", resp.StatusCode, body)
	}
	if err := shutdownRestarted(); err != nil {
		t.Fatal(err)
	}
	if err := shutdownSingle2(); err != nil {
		t.Fatal(err)
	}
}

func TestServeShardedFlagValidation(t *testing.T) {
	var stderr bytes.Buffer
	cases := [][]string{
		{"-shards", "4", "-graph", "/x.kfg", "-data", "/x.kfd"}, // -graph unused in sharded mode
		{"-shards", "4", "-readonly", "-data", "/x.kfd"},        // no static pool mode
		{"-save-pool", "/tmp/p"},                                // requires sharded mode
		{"-pool", "/does/not/exist"},                            // missing manifest
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &stderr, nil); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}
