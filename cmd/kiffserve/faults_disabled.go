//go:build !faultinject

package main

import (
	"io"
	"os"

	"kiff/internal/server"
)

// faultsFromEnv is compiled out of release binaries: without the
// faultinject build tag there is no fault-injection surface and no
// /faults endpoint, whatever the environment says. The chaos harness
// builds kiffserve with -tags faultinject to get the real one.
func faultsFromEnv(io.Writer) *server.Faults { return nil }

// walTearHook has no release implementation either: the torn-append
// fault only exists behind the faultinject tag.
func walTearHook(*server.Faults) func(file *os.File, frame []byte) bool { return nil }
