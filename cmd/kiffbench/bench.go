package main

// Build-path micro-benchmark emitter: `kiffbench -bench-out BENCH.json`
// measures the hot paths of construction, persistence and serving with
// testing.Benchmark and writes a machine-readable JSON record. The
// committed BENCH_pr<N>.json files form the repository's performance
// trajectory: each storage/algorithm PR re-runs the emitter and checks
// the allocation and timing deltas in.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"kiff"
	"kiff/internal/core"
	"kiff/internal/dataset"
	"kiff/internal/knngraph"
	"kiff/internal/rcs"
	"kiff/internal/wal"
)

// benchResult is one benchmark row of the JSON record.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Tolerance is the allowed ns/op growth ratio when this record is
	// used as a -compare baseline; 0 falls back to the global
	// -compare-tolerance. Noisy benches (parallel or population-growing
	// ones) carry a looser bound so they cannot mask real regressions in
	// the stable ones, which keep a tight one.
	Tolerance float64 `json:"tolerance,omitempty"`
	// PagesCopiedPerOp / PagesSharedPerOp record the copy-on-write chunk
	// accounting for publication benches: how many graph+view header pages
	// each publish rebuilt versus aliased from the previous snapshot.
	PagesCopiedPerOp float64 `json:"pages_copied_per_op,omitempty"`
	PagesSharedPerOp float64 `json:"pages_shared_per_op,omitempty"`
	// Recall / SimEvalsPerOp annotate construction benches with the §IV-C
	// quality/cost observables: exact recall against brute-force ground
	// truth, and the (deterministic) similarity-evaluation count of one
	// build. SimEvalsRatio additionally relates an approximate builder's
	// SimEvals to the standard KIFF build on the same fixture — the
	// headline statistic of the bucketed engine.
	Recall        float64 `json:"recall,omitempty"`
	SimEvalsPerOp float64 `json:"sim_evals_per_op,omitempty"`
	SimEvalsRatio float64 `json:"sim_evals_ratio,omitempty"`
}

// benchTolerances annotates each emitted bench with its baseline
// tolerance (see benchResult.Tolerance). The stable single-threaded
// codec and construction paths hold a tight bound; scheduler-dependent
// benches (sharded inserts/rebuilds, snapshot publication) get a looser
// one, because CI runners vary wildly in core count.
var benchTolerances = map[string]float64{
	"rcs-build":                    1.6,
	"kiff-build":                   1.6,
	"kiff-build-wiki05":            1.6,
	"kiff-build-bucketed":          1.6,
	"graph-encode":                 1.5,
	"graph-decode":                 1.5,
	"dataset-encode":               1.5,
	"dataset-decode":               1.5,
	"graph-load-heap":              1.6,
	"graph-load-mapped":            1.6,
	"dataset-load-heap":            1.6,
	"dataset-load-mapped":          1.6,
	"snapshot-publish":             2.5,
	"snapshot-publish-full":        2.0,
	"snapshot-publish-incremental": 3.0,
	"snapshot-query":               2.0,
	"insert-single":                2.0,
	"maintainer-insert-wal":        2.5,
	"insert-sharded":               2.5,
	"rebuild-single":               2.0,
	"rebuild-sharded":              2.5,
}

// benchReport is the top-level JSON record.
type benchReport struct {
	Schema  string        `json:"schema"`
	Go      string        `json:"go"`
	Arch    string        `json:"arch"`
	Dataset string        `json:"dataset"`
	Benches []benchResult `json:"benches"`
}

func measure(name string, fn func(b *testing.B)) benchResult {
	r := testing.Benchmark(fn)
	return benchResult{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Tolerance:   benchTolerances[name],
	}
}

// validBenchNames lists every bench runBenchOut can emit, in emission
// order — the vocabulary -bench-names is validated against.
var validBenchNames = []string{
	"rcs-build",
	"kiff-build",
	"kiff-build-wiki05",
	"kiff-build-bucketed",
	"graph-encode",
	"graph-decode",
	"dataset-encode",
	"dataset-decode",
	"graph-load-heap",
	"graph-load-mapped",
	"dataset-load-heap",
	"dataset-load-mapped",
	"snapshot-publish",
	"snapshot-publish-full",
	"snapshot-publish-incremental",
	"insert-single",
	"maintainer-insert-wal",
	"insert-sharded",
	"rebuild-single",
	"rebuild-sharded",
	"snapshot-query",
}

// benchFilter selects a subset of the named benches: nil/empty selects
// everything.
type benchFilter map[string]bool

// parseBenchFilter parses a comma-separated bench-name list. A name
// outside validBenchNames is an error (→ nonzero exit) rather than a
// silently empty selection — a typo in a CI bench list must fail the
// step, not skip the gate.
func parseBenchFilter(names string) (benchFilter, error) {
	if names == "" {
		return nil, nil
	}
	valid := make(map[string]bool, len(validBenchNames))
	for _, n := range validBenchNames {
		valid[n] = true
	}
	f := benchFilter{}
	for _, n := range strings.Split(names, ",") {
		if n = strings.TrimSpace(n); n == "" {
			continue
		}
		if !valid[n] {
			return nil, fmt.Errorf("unknown bench name %q; valid names: %s",
				n, strings.Join(validBenchNames, ", "))
		}
		f[n] = true
	}
	return f, nil
}

func (f benchFilter) selects(name string) bool { return f == nil || f[name] }

// compareAgainst checks the freshly measured report against a committed
// baseline record: any bench present in both whose ns/op grew beyond
// tolerance× the baseline is a regression. It prints the full delta table
// to stderr and returns an error (→ nonzero exit) listing the
// regressions, so CI can gate — or merely surface — construction-path
// slowdowns against the committed BENCH_pr<N>.json trajectory.
func compareAgainst(oldPath string, report benchReport, tolerance float64, stderr io.Writer) error {
	raw, err := os.ReadFile(oldPath)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	var old benchReport
	if err := json.Unmarshal(raw, &old); err != nil {
		return fmt.Errorf("compare: %s: %w", oldPath, err)
	}
	oldBy := make(map[string]benchResult, len(old.Benches))
	for _, b := range old.Benches {
		oldBy[b.Name] = b
	}
	var regressions []string
	for _, b := range report.Benches {
		prev, ok := oldBy[b.Name]
		if !ok || prev.NsPerOp <= 0 {
			continue
		}
		// The baseline's per-bench tolerance wins over the global flag:
		// a noisy bench's slack must not loosen (nor tighten) the gate on
		// the stable ones.
		tol := tolerance
		if prev.Tolerance > 0 {
			tol = prev.Tolerance
		}
		ratio := b.NsPerOp / prev.NsPerOp
		fmt.Fprintf(stderr, "kiffbench: compare %-18s %12.0f -> %12.0f ns/op  (%.2fx, tolerance %.2fx)\n",
			b.Name, prev.NsPerOp, b.NsPerOp, ratio, tol)
		if ratio > tol {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f ns/op (%.2fx > %.2fx tolerance)",
					b.Name, prev.NsPerOp, b.NsPerOp, ratio, tol))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("compare: %d bench(es) regressed vs %s:\n  %s",
			len(regressions), oldPath, strings.Join(regressions, "\n  "))
	}
	return nil
}

// benchOptions parameterizes runBenchOut beyond the output path.
type benchOptions struct {
	// Names restricts which benches run (comma-separated; empty = all).
	Names string
	// Compare, when set, checks the results against this baseline record
	// and fails on regressions beyond Tolerance.
	Compare string
	// Tolerance is the allowed ns/op growth ratio for -compare (e.g. 1.5
	// = fail past +50%).
	Tolerance float64
	// RecallFloor, when > 0, fails the run unless the bucketed builder's
	// recall on the scale-0.5 fixture reaches RecallFloor × standard
	// KIFF's recall (the CI recall smoke gate).
	RecallFloor float64
}

// runBenchOut measures the build/persist/serve hot paths on the Wikipedia
// replica at 5% scale (the same fixture bench_test.go's ablation benches
// use) and writes the JSON record to path ("-" = stdout).
func runBenchOut(path string, opts benchOptions, stderr io.Writer) error {
	d, err := dataset.Wikipedia.Generate(0.05, 3)
	if err != nil {
		return err
	}
	k := 10
	fmt.Fprintf(stderr, "kiffbench: bench fixture %s\n", d.Stats())

	report := benchReport{
		Schema:  "kiff/bench/v1",
		Go:      runtime.Version(),
		Arch:    runtime.GOOS + "/" + runtime.GOARCH,
		Dataset: fmt.Sprintf("wikipedia scale=0.05 seed=3 k=%d (publish benches: scale=0.2; construction benches: scale=0.5)", k),
	}
	filter, err := parseBenchFilter(opts.Names)
	if err != nil {
		return err
	}
	add := func(name string, fn func(b *testing.B)) {
		if filter.selects(name) {
			report.Benches = append(report.Benches, measure(name, fn))
		}
	}

	add("rcs-build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rcs.Build(d, rcs.BuildOptions{})
		}
	})

	var built *kiff.Result
	add("kiff-build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := core.Build(d, core.DefaultConfig(k))
			if err != nil {
				b.Fatal(err)
			}
			_ = res
		}
	})
	if built, err = kiff.Build(d, kiff.Options{K: k}); err != nil {
		return err
	}

	// Construction cost-curve benches at 10× the fixture population
	// (wikipedia scale 0.5): the standard KIFF baseline and the bucketed
	// divide-and-conquer builder at its benchmark operating point (5 bands
	// × 96-user buckets × 1 sweep). Both rows carry the §IV-C quality/cost
	// observables — exact recall and the deterministic SimEvals count —
	// and the bucketed row records its SimEvals as a ratio of the standard
	// build's, the headline of the sub-quadratic trade.
	var floorErr error
	if filter.selects("kiff-build-wiki05") || filter.selects("kiff-build-bucketed") || opts.RecallFloor > 0 {
		d05, err := dataset.Wikipedia.Generate(0.5, 3)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "kiffbench: construction fixture %s\n", d05.Stats())
		stdOpts := kiff.Options{K: k, Seed: 3}
		bucketedOpts := kiff.Options{K: k, Seed: 3, Algorithm: kiff.Bucketed,
			Bands: 5, BucketSize: 96, Sweeps: 1}
		stdRes, err := kiff.Build(d05, stdOpts)
		if err != nil {
			return err
		}
		stdRecall, err := kiff.Recall(d05, stdRes.Graph, stdOpts, 0)
		if err != nil {
			return err
		}
		bucketedRes, err := kiff.Build(d05, bucketedOpts)
		if err != nil {
			return err
		}
		bucketedRecall, err := kiff.Recall(d05, bucketedRes.Graph, bucketedOpts, 0)
		if err != nil {
			return err
		}
		add("kiff-build-wiki05", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := kiff.Build(d05, stdOpts); err != nil {
					b.Fatal(err)
				}
			}
		})
		if r := findBench(report, "kiff-build-wiki05"); r != nil {
			r.Recall = stdRecall
			r.SimEvalsPerOp = float64(stdRes.Run.SimEvals)
		}
		add("kiff-build-bucketed", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := kiff.Build(d05, bucketedOpts); err != nil {
					b.Fatal(err)
				}
			}
		})
		ratio := float64(bucketedRes.Run.SimEvals) / float64(stdRes.Run.SimEvals)
		if r := findBench(report, "kiff-build-bucketed"); r != nil {
			r.Recall = bucketedRecall
			r.SimEvalsPerOp = float64(bucketedRes.Run.SimEvals)
			r.SimEvalsRatio = ratio
		}
		fmt.Fprintf(stderr, "kiffbench: bucketed recall %.4f (kiff %.4f), SimEvals %d vs %d (%.2fx)\n",
			bucketedRecall, stdRecall, bucketedRes.Run.SimEvals, stdRes.Run.SimEvals, ratio)
		if opts.RecallFloor > 0 && bucketedRecall < opts.RecallFloor*stdRecall {
			floorErr = fmt.Errorf("recall floor: bucketed recall %.4f < %.2f × kiff recall %.4f",
				bucketedRecall, opts.RecallFloor, stdRecall)
		}
	}

	var encoded bytes.Buffer
	if err := kiff.WriteGraphBinary(&encoded, built.Graph); err != nil {
		return err
	}
	add("graph-encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := kiff.WriteGraphBinary(io.Discard, built.Graph); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("graph-decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := kiff.ReadGraphBinary(bytes.NewReader(encoded.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})

	var dsEncoded bytes.Buffer
	if err := kiff.WriteDatasetBinary(&dsEncoded, d); err != nil {
		return err
	}
	add("dataset-encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := kiff.WriteDatasetBinary(io.Discard, d); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("dataset-decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := kiff.ReadDatasetBinary(bytes.NewReader(dsEncoded.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Load-path benches: heap decode vs zero-copy mapped decode of the
	// same checkpoints. allocs/op is the headline — the mapped loads stay
	// O(1) in graph size.
	tmp, err := os.MkdirTemp("", "kiffbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	gpath := filepath.Join(tmp, "graph.kfg")
	dpath := filepath.Join(tmp, "data.kfd")
	if err := kiff.SaveGraph(gpath, built.Graph); err != nil {
		return err
	}
	if err := kiff.SaveDataset(dpath, d); err != nil {
		return err
	}
	add("graph-load-heap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := kiff.LoadGraph(gpath); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("graph-load-mapped", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mg, err := kiff.LoadGraphMapped(gpath)
			if err != nil {
				b.Fatal(err)
			}
			if err := mg.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("dataset-load-heap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := kiff.LoadDataset(dpath); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("dataset-load-mapped", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			md, err := kiff.LoadDatasetMapped(dpath)
			if err != nil {
				b.Fatal(err)
			}
			if err := md.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})

	add("snapshot-publish", func(b *testing.B) {
		m, err := kiff.NewMaintainer(mustClone(d), kiff.Options{K: k})
		if err != nil {
			b.Fatal(err)
		}
		n := m.Dataset().NumUsers()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// One rating update + single-user Rebuild + snapshot
			// publication, over a fixed-size population so per-op cost
			// does not depend on b.N (Inserts would grow |U|).
			if err := m.AddRating(uint32(i%n), uint32(i%40), float64(1+i%5)); err != nil {
				b.Fatal(err)
			}
			if err := m.Rebuild(nil); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Copy-on-write publication cost at 4x population (wikipedia scale
	// 0.2): "full" is the from-scratch flat export of the whole graph —
	// what every publication cost before page-level COW, and what the
	// first publication still costs — while "incremental" is the amortized
	// publish() after a single-user Insert. The incremental number is read
	// from the maintainer's publication counters rather than wall-clocked
	// around Insert, because Insert folds the KNN refinement in with the
	// publish and would drown the quantity under test.
	if filter.selects("snapshot-publish-full") || filter.selects("snapshot-publish-incremental") {
		d4, err := dataset.Wikipedia.Generate(0.2, 3)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "kiffbench: publish fixture %s\n", d4.Stats())
		m4, err := kiff.NewMaintainer(d4, kiff.Options{K: k})
		if err != nil {
			return err
		}
		add("snapshot-publish-full", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = m4.Graph() // flat CSR export of every page
			}
		})
		if filter.selects("snapshot-publish-incremental") {
			res, err := measureIncrementalPublish(m4, d4, k)
			if err != nil {
				return err
			}
			report.Benches = append(report.Benches, res)
		}
		if full, incr := findBench(report, "snapshot-publish-full"), findBench(report, "snapshot-publish-incremental"); full != nil && incr != nil && incr.NsPerOp > 0 {
			fmt.Fprintf(stderr, "kiffbench: incremental publish %.0f ns/op vs full export %.0f ns/op (%.1fx cheaper, %.1f pages copied / %.1f shared per publish)\n",
				incr.NsPerOp, full.NsPerOp, full.NsPerOp/incr.NsPerOp, incr.PagesCopiedPerOp, incr.PagesSharedPerOp)
		}
	}

	// Sharded-vs-single maintenance throughput: the same workload driven
	// through one Maintainer and through a 4-shard pool. Inserts arrive
	// as 64-profile batches (the pool fans a batch out across its shards
	// in parallel, and each shard's candidate sets are ~1/N the size);
	// rebuilds refresh 32 rating-touched users per op over a fixed
	// population. The insert benches grow the population with b.N — the
	// growth is identical on both sides, so the ratio stays meaningful
	// (and their baseline tolerance is loose; see benchTolerances).
	const (
		benchShards      = 4
		insertBatchSize  = 64
		rebuildDirtySize = 32
	)
	insertProfiles := func(n int) []kiff.Profile {
		ps := make([]kiff.Profile, n)
		for i := range ps {
			ps[i] = d.Users[i%d.NumUsers()].Clone()
		}
		return ps
	}
	add("insert-single", func(b *testing.B) {
		m, err := kiff.NewMaintainer(mustClone(d), kiff.Options{K: k})
		if err != nil {
			b.Fatal(err)
		}
		batch := insertProfiles(insertBatchSize)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.InsertBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("maintainer-insert-wal", func(b *testing.B) {
		// insert-single with a write-ahead log attached: the delta against
		// insert-single is the durability tax of encoding + appending one
		// KFL1 record per profile. SyncNever isolates that tax from fsync
		// latency, which is a policy choice (-wal-sync), not a fixed cost.
		m, err := kiff.NewMaintainer(mustClone(d), kiff.Options{K: k})
		if err != nil {
			b.Fatal(err)
		}
		dir, err := os.MkdirTemp("", "kiffbench-wal-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		if _, err := m.OpenWAL(filepath.Join(dir, "wal.kfl"), wal.Options{Sync: wal.SyncNever}); err != nil {
			b.Fatal(err)
		}
		defer m.CloseWAL()
		batch := insertProfiles(insertBatchSize)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.InsertBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("insert-sharded", func(b *testing.B) {
		p, err := kiff.NewShardedMaintainer(d, benchShards, kiff.Options{K: k})
		if err != nil {
			b.Fatal(err)
		}
		batch := insertProfiles(insertBatchSize)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.InsertBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("rebuild-single", func(b *testing.B) {
		m, err := kiff.NewMaintainer(mustClone(d), kiff.Options{K: k})
		if err != nil {
			b.Fatal(err)
		}
		n := m.Dataset().NumUsers()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < rebuildDirtySize; j++ {
				u := uint32((i*rebuildDirtySize + j*7) % n)
				if err := m.AddRating(u, uint32((i+j)%40), float64(1+j%5)); err != nil {
					b.Fatal(err)
				}
			}
			if err := m.Rebuild(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("rebuild-sharded", func(b *testing.B) {
		p, err := kiff.NewShardedMaintainer(d, benchShards, kiff.Options{K: k})
		if err != nil {
			b.Fatal(err)
		}
		n := p.NumUsers()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < rebuildDirtySize; j++ {
				u := uint32((i*rebuildDirtySize + j*7) % n)
				if err := p.AddRating(u, uint32((i+j)%40), float64(1+j%5)); err != nil {
					b.Fatal(err)
				}
			}
			if err := p.Rebuild(nil); err != nil {
				b.Fatal(err)
			}
		}
	})

	add("snapshot-query", func(b *testing.B) {
		m, err := kiff.NewMaintainer(mustClone(d), kiff.Options{K: k})
		if err != nil {
			b.Fatal(err)
		}
		s := m.Snapshot()
		profile := d.Users[1]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Query(profile, k, 2*k); err != nil {
				b.Fatal(err)
			}
		}
	})

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		if _, err = os.Stdout.Write(out); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(path, out, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "kiffbench: wrote %s (%d benches)\n", path, len(report.Benches))
	}
	// Gates run after writing, so the fresh record survives a failure.
	if floorErr != nil {
		return floorErr
	}
	if opts.Compare != "" {
		return compareAgainst(opts.Compare, report, opts.Tolerance, stderr)
	}
	return nil
}

// measureIncrementalPublish drives single-user Inserts through the
// maintainer and reports the amortized publish() cost from the
// publication counters: ns_per_op is ΔPublishNs/ΔPublishes, the page
// stats are the per-publish copy-on-write accounting, and bytes_per_op
// is the record bytes those copied pages amount to at full occupancy
// (PageUsers rows × k neighbors × 16 bytes per record) — an upper bound
// on the graph data rebuilt per publish. allocs_per_op is not measurable
// through counters and stays 0.
func measureIncrementalPublish(m *kiff.Maintainer, d *kiff.Dataset, k int) (benchResult, error) {
	const name = "snapshot-publish-incremental"
	const ops = 256
	// Warm-up inserts move the maintainer past the first (full)
	// publication's neighborhood churn so the measured window reflects
	// steady-state incremental publishing.
	for i := 0; i < 16; i++ {
		if _, err := m.Insert(d.Users[i%d.NumUsers()].Clone()); err != nil {
			return benchResult{}, err
		}
	}
	before := m.Counters()
	for i := 0; i < ops; i++ {
		if _, err := m.Insert(d.Users[(i*7)%d.NumUsers()].Clone()); err != nil {
			return benchResult{}, err
		}
	}
	after := m.Counters()
	pubs := after.Publishes - before.Publishes
	if pubs <= 0 {
		return benchResult{}, fmt.Errorf("kiffbench: %s: no publications recorded over %d inserts", name, ops)
	}
	copiedPerOp := float64(after.PagesCopied-before.PagesCopied) / float64(pubs)
	return benchResult{
		Name:             name,
		NsPerOp:          float64(after.PublishNs-before.PublishNs) / float64(pubs),
		BytesPerOp:       int64(copiedPerOp * float64(knngraph.PageUsers*k*16)),
		Tolerance:        benchTolerances[name],
		PagesCopiedPerOp: copiedPerOp,
		PagesSharedPerOp: float64(after.PagesShared-before.PagesShared) / float64(pubs),
	}, nil
}

// findBench returns the named result from the report, or nil.
func findBench(report benchReport, name string) *benchResult {
	for i := range report.Benches {
		if report.Benches[i].Name == name {
			return &report.Benches[i]
		}
	}
	return nil
}

// mustClone deep-copies the fixture dataset so maintainer benchmarks can
// mutate it without affecting the other measurements.
func mustClone(d *kiff.Dataset) *kiff.Dataset {
	profiles := make([]kiff.Profile, d.NumUsers())
	for i, u := range d.Users {
		profiles[i] = u.Clone()
	}
	nd, err := dataset.New(d.Name, profiles, d.NumItems())
	if err != nil {
		panic(err)
	}
	nd.EnsureItemProfiles()
	return nd
}
