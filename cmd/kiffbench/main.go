// Command kiffbench regenerates the tables and figures of the paper's
// evaluation (ICDE 2016, Tables I–IX and Figures 1, 4–10).
//
// Usage:
//
//	kiffbench -exp table2                 # one experiment, quarter scale
//	kiffbench -exp all -scale 1           # full paper-sized run
//	kiffbench -exp fig8 -data-dir plots/  # also dump plot-ready .tsv series
//	kiffbench -list                       # available experiment IDs
//
// Dataset replicas are synthetic but calibrated to the published
// statistics; -scale 1 reproduces the published |U|, |I| and |E| (see
// DESIGN.md §3). Recall is estimated on -recall-sample users (0 = exact,
// as in the paper, at O(|U|²) cost).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"kiff/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "kiffbench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("kiffbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp          = fs.String("exp", "all", "experiment ID or 'all' (see -list)")
		scale        = fs.Float64("scale", 0.25, "dataset scale factor (1 = published sizes)")
		seed         = fs.Int64("seed", 42, "seed for dataset generation and baselines")
		workers      = fs.Int("workers", 0, "worker goroutines (0 = all CPUs)")
		recallSample = fs.Int("recall-sample", 1000, "users sampled for recall ground truth (0 = all users)")
		kcap         = fs.Int("kcap", 0, "cap per-dataset k (0 = paper values; useful for quick runs at tiny scales)")
		dataDir      = fs.String("data-dir", "", "directory for plot-ready .tsv figure series (empty = none)")
		list         = fs.Bool("list", false, "list experiment IDs and exit")
		benchOut     = fs.String("bench-out", "", "run the build/persist/serve micro-benchmarks and write JSON to this path ('-' = stdout), then exit")
		benchNames   = fs.String("bench-names", "", "with -bench-out: comma-separated bench names to run (empty = all)")
		compare      = fs.String("compare", "", "with -bench-out: baseline BENCH json to compare against; exits nonzero when a bench regresses beyond -compare-tolerance")
		compareTol   = fs.Float64("compare-tolerance", 1.5, "allowed ns/op growth ratio for -compare (1.5 = fail past +50%)")
		recallFloor  = fs.Float64("recall-floor", 0, "with -bench-out: minimum bucketed-builder recall as a fraction of standard KIFF's; exits nonzero below it (0 = no check)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Fprintln(stdout, strings.Join(experiments.IDs(), "\n"))
		return nil
	}
	if *benchOut != "" {
		return runBenchOut(*benchOut, benchOptions{
			Names:       *benchNames,
			Compare:     *compare,
			Tolerance:   *compareTol,
			RecallFloor: *recallFloor,
		}, stderr)
	}
	if *compare != "" || *benchNames != "" || *recallFloor != 0 {
		return fmt.Errorf("-compare, -bench-names and -recall-floor require -bench-out")
	}

	h := experiments.New(experiments.Options{
		Scale:        *scale,
		Seed:         *seed,
		Workers:      *workers,
		RecallSample: *recallSample,
		KCap:         *kcap,
		DataDir:      *dataDir,
		Out:          stdout,
	})

	if *exp == "all" {
		return experiments.RunAll(h)
	}
	runner, ok := experiments.Registry[*exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q; available: %s",
			*exp, strings.Join(experiments.IDs(), ", "))
	}
	return runner(h)
}
