package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-list"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, id := range []string{"table1", "table2", "fig8", "fig10"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list missing %s:\n%s", id, out.String())
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-exp", "table1", "-scale", "0.01", "-recall-sample", "50"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "Table I") {
		t.Errorf("missing Table I output:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-exp", "table42"}, &out, &errOut); err == nil {
		t.Error("unknown experiment must fail")
	}
}

func TestRunWithDataDirAndKCap(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	err := run([]string{"-exp", "fig9", "-scale", "0.01", "-recall-sample", "50",
		"-kcap", "5", "-data-dir", dir}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "fig9_") {
			found = true
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if len(data) == 0 {
				t.Errorf("%s is empty", e.Name())
			}
		}
	}
	if !found {
		t.Error("no fig9 series dumped")
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-scale", "notanumber"}, &out, &errOut); err == nil {
		t.Error("bad flag value must fail")
	}
}
