package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-list"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, id := range []string{"table1", "table2", "fig8", "fig10"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list missing %s:\n%s", id, out.String())
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-exp", "table1", "-scale", "0.01", "-recall-sample", "50"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "Table I") {
		t.Errorf("missing Table I output:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-exp", "table42"}, &out, &errOut); err == nil {
		t.Error("unknown experiment must fail")
	}
}

func TestRunWithDataDirAndKCap(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	err := run([]string{"-exp", "fig9", "-scale", "0.01", "-recall-sample", "50",
		"-kcap", "5", "-data-dir", dir}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "fig9_") {
			found = true
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if len(data) == 0 {
				t.Errorf("%s is empty", e.Name())
			}
		}
	}
	if !found {
		t.Error("no fig9 series dumped")
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-scale", "notanumber"}, &out, &errOut); err == nil {
		t.Error("bad flag value must fail")
	}
}

// TestCompareDetectsRegression pins the -compare gate: a baseline with an
// absurdly fast ns/op must fail the run with a nonzero-exit error, and a
// generous baseline must pass. The bench subset is filtered to keep the
// test fast.
func TestCompareDetectsRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	dir := t.TempDir()
	outPath := filepath.Join(dir, "new.json")

	fast := filepath.Join(dir, "fast.json")
	if err := os.WriteFile(fast, []byte(`{"schema":"kiff/bench/v1","benches":[
		{"name":"rcs-build","ns_per_op":1,"bytes_per_op":0,"allocs_per_op":0}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	err := run([]string{"-bench-out", outPath, "-bench-names", "rcs-build", "-compare", fast}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("impossible baseline must report a regression, got err = %v", err)
	}
	// The fresh record must have been written even though the gate failed,
	// and contain only the filtered bench.
	data, readErr := os.ReadFile(outPath)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if !strings.Contains(string(data), "rcs-build") || strings.Contains(string(data), "kiff-build") {
		t.Fatalf("filtered record wrong:\n%s", data)
	}

	slow := filepath.Join(dir, "slow.json")
	if err := os.WriteFile(slow, []byte(`{"schema":"kiff/bench/v1","benches":[
		{"name":"rcs-build","ns_per_op":1e15,"bytes_per_op":0,"allocs_per_op":0},
		{"name":"not-measured-here","ns_per_op":1,"bytes_per_op":0,"allocs_per_op":0}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-bench-out", outPath, "-bench-names", "rcs-build", "-compare", slow}, &out, &errOut); err != nil {
		t.Fatalf("generous baseline must pass, got %v", err)
	}
}

// TestCompareRequiresBenchOut: the compare/filter flags are meaningless
// without -bench-out and must be rejected rather than ignored.
func TestCompareRequiresBenchOut(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-compare", "x.json"}, &out, &errOut); err == nil {
		t.Error("-compare without -bench-out must fail")
	}
	if err := run([]string{"-bench-names", "rcs-build"}, &out, &errOut); err == nil {
		t.Error("-bench-names without -bench-out must fail")
	}
	if err := run([]string{"-recall-floor", "0.9"}, &out, &errOut); err == nil {
		t.Error("-recall-floor without -bench-out must fail")
	}
}

// TestUnknownBenchName: a typo in -bench-names must fail the run (so CI
// never silently measures nothing) and the error must list the valid
// names so the fix is obvious from the failure output alone.
func TestUnknownBenchName(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "out.json")
	var out, errOut bytes.Buffer
	err := run([]string{"-bench-out", outPath, "-bench-names", "rcs-build,kiff-biuld"}, &out, &errOut)
	if err == nil {
		t.Fatal("unknown bench name must fail")
	}
	if !strings.Contains(err.Error(), "kiff-biuld") {
		t.Errorf("error %q must quote the offending name", err)
	}
	for _, name := range validBenchNames {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error must list valid name %q:\n%v", name, err)
		}
	}
	if _, statErr := os.Stat(outPath); statErr == nil {
		t.Error("no bench record must be written on a bad name")
	}
}

// TestComparePerBenchTolerance: a baseline bench's own tolerance
// overrides the global flag in both directions — a tight bound on a
// stable bench fails inside the global slack, and a loose bound on a
// noisy bench passes beyond it.
func TestComparePerBenchTolerance(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := os.WriteFile(base, []byte(`{"schema":"kiff/bench/v1","benches":[
		{"name":"stable","ns_per_op":100,"tolerance":1.2},
		{"name":"noisy","ns_per_op":100,"tolerance":3.0},
		{"name":"global","ns_per_op":100}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	report := benchReport{Benches: []benchResult{
		{Name: "stable", NsPerOp: 150}, // 1.5x: within the 1.6 global, beyond its own 1.2
		{Name: "noisy", NsPerOp: 250},  // 2.5x: beyond the global, within its own 3.0
		{Name: "global", NsPerOp: 150}, // 1.5x: no per-bench bound, global 1.6 applies
	}}
	var errOut bytes.Buffer
	err := compareAgainst(base, report, 1.6, &errOut)
	if err == nil {
		t.Fatal("stable bench beyond its per-bench tolerance must regress")
	}
	if !strings.Contains(err.Error(), "stable") {
		t.Errorf("regression list %v must name the stable bench", err)
	}
	if strings.Contains(err.Error(), "noisy") || strings.Contains(err.Error(), "global") {
		t.Errorf("regression list %v must flag only the stable bench", err)
	}
}
