package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kiff"
)

func TestRunGeneratesParseableEdgeList(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-preset", "wikipedia", "-scale", "0.01", "-seed", "7"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	ds, err := kiff.Load(bytes.NewReader(out.Bytes()), kiff.LoadOptions{Name: "roundtrip"})
	if err != nil {
		t.Fatalf("generated output does not parse: %v", err)
	}
	if ds.NumUsers() < 50 {
		t.Errorf("generated only %d users", ds.NumUsers())
	}
	if !strings.Contains(errOut.String(), "wrote") {
		t.Errorf("missing summary:\n%s", errOut.String())
	}
}

func TestRunMLPreset(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-preset", "ml", "-scale", "0.02"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	ds, err := kiff.Load(bytes.NewReader(out.Bytes()), kiff.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Binary() {
		t.Error("ML preset must carry ratings")
	}
}

func TestRunToFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.tsv")
	var out, errOut bytes.Buffer
	if err := run([]string{"-preset", "arxiv", "-scale", "0.005", "-o", path}, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty output file")
	}
	if out.Len() != 0 {
		t.Error("stdout must stay clean when writing to a file")
	}
}

func TestRunRejectsUnknownPreset(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-preset", "netflix"}, &out, &errOut); err == nil {
		t.Error("unknown preset must fail")
	}
}

func TestRunDeterministicAcrossInvocations(t *testing.T) {
	gen := func() string {
		var out, errOut bytes.Buffer
		if err := run([]string{"-preset", "wikipedia", "-scale", "0.01", "-seed", "3"}, &out, &errOut); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	if gen() != gen() {
		t.Error("same seed must generate identical output")
	}
}
