// Command kiffgen emits synthetic datasets as "user item [rating]" edge
// lists, for use with kiffknn or external tools.
//
// Usage:
//
//	kiffgen -preset wikipedia -scale 0.25 -o wikipedia.tsv
//	kiffgen -preset ml -scale 1 -o ml1.tsv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"kiff/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "kiffgen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("kiffgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		preset = fs.String("preset", "wikipedia", "dataset preset: arxiv, wikipedia, gowalla, dblp or ml")
		scale  = fs.Float64("scale", 0.25, "scale factor (1 = published sizes)")
		seed   = fs.Int64("seed", 42, "generation seed")
		out    = fs.String("o", "-", "output path ('-' = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		d   *dataset.Dataset
		err error
	)
	if *preset == "ml" {
		d, err = dataset.SynthesizeMovieLens(dataset.DefaultMovieLens(*scale, *seed))
	} else {
		d, err = dataset.Preset(*preset).Generate(*scale, *seed)
	}
	if err != nil {
		return fmt.Errorf("%w\navailable presets: %s, ml", err, strings.Join(dataset.SortedPresetNames(), ", "))
	}

	w := stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := dataset.Write(w, d); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "kiffgen: wrote %s\n", d.Stats())
	return nil
}
