package kiff

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildValidatesOptions(t *testing.T) {
	d, _, _ := Toy()
	if _, err := Build(d, Options{K: 0}); err == nil {
		t.Error("K=0 must be rejected")
	}
	if _, err := Build(d, Options{K: 2, Metric: "nope"}); err == nil {
		t.Error("unknown metric must be rejected")
	}
	if _, err := Build(d, Options{K: 2, Algorithm: "magic"}); err == nil {
		t.Error("unknown algorithm must be rejected")
	}
}

func TestBuildToyAllAlgorithms(t *testing.T) {
	d, users, _ := Toy()
	for _, algo := range []Algorithm{KIFF, NNDescent, HyRec, BruteForce, Bucketed} {
		res, err := Build(d, Options{K: 2, Algorithm: algo, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := res.Graph.Validate(); err != nil {
			t.Fatalf("%s: invalid graph: %v", algo, err)
		}
		// Alice's only overlapping user is Bob; every algorithm that
		// evaluates the pair must rank Bob first for Alice.
		alice := res.Graph.Neighbors(0)
		if len(alice) == 0 || alice[0].ID != 1 {
			t.Errorf("%s: Alice's top neighbor = %v, want Bob", algo, alice)
		}
		_ = users
	}
}

func TestBuildAllMetrics(t *testing.T) {
	d, err := GeneratePreset("wikipedia", 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Metrics() {
		res, err := Build(d, Options{K: 5, Metric: m})
		if err != nil {
			t.Fatalf("metric %s: %v", m, err)
		}
		if err := res.Graph.Validate(); err != nil {
			t.Fatalf("metric %s: %v", m, err)
		}
	}
}

func TestRecallAgainstBruteForce(t *testing.T) {
	d, err := GeneratePreset("wikipedia", 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{K: 10}
	res, err := Build(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Recall(d, res.Graph, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if full < 0.9 {
		t.Errorf("KIFF recall = %v, want ≥ 0.9", full)
	}
	sampled, err := Recall(d, res.Graph, opts, 50)
	if err != nil {
		t.Fatal(err)
	}
	if sampled < full-0.2 || sampled > full+0.2 {
		t.Errorf("sampled recall %v too far from full %v", sampled, full)
	}
}

func TestExhaustiveGammaIsExactViaFacade(t *testing.T) {
	d, err := GeneratePreset("arxiv", 0.005, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(d, Options{K: 5, Gamma: -1})
	if err != nil {
		t.Fatal(err)
	}
	recall, err := Recall(d, res.Graph, Options{K: 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// On a tiny graph some users have fewer than k overlapping candidates;
	// brute force pads their exact top-k with zero-similarity ties that
	// KIFF rightly never materializes (see the positive-prefix property
	// test in internal/core). The paper reports 0.99 for the same reason.
	if recall < 0.95 {
		t.Errorf("exhaustive recall = %v, want ≥ 0.95", recall)
	}
}

// TestNegativeBetaIsExactViaFacade covers the exact mode the public API
// exposes through Beta < 0: with the termination threshold disabled, KIFF
// iterates until its candidate sets are exhausted, which must match the
// γ=∞ exact graph neighbor for neighbor.
func TestNegativeBetaIsExactViaFacade(t *testing.T) {
	d, err := GeneratePreset("arxiv", 0.005, 4)
	if err != nil {
		t.Fatal(err)
	}
	viaGamma, err := Build(d, Options{K: 5, Gamma: -1})
	if err != nil {
		t.Fatal(err)
	}
	viaBeta, err := Build(d, Options{K: 5, Beta: -1})
	if err != nil {
		t.Fatal(err)
	}
	if viaBeta.Run.Iterations < viaGamma.Run.Iterations {
		t.Errorf("Beta<0 ran %d iterations, γ=∞ ran %d", viaBeta.Run.Iterations, viaGamma.Run.Iterations)
	}
	for u := 0; u < viaGamma.Graph.NumUsers(); u++ {
		a, b := viaGamma.Graph.Neighbors(uint32(u)), viaBeta.Graph.Neighbors(uint32(u))
		if len(a) != len(b) {
			t.Fatalf("user %d: neighbor counts differ: %d vs %d", u, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("user %d: neighbor %d differs: %v vs %v", u, i, a[i], b[i])
			}
		}
	}
}

func TestAlgorithmsListsRegistry(t *testing.T) {
	algos := Algorithms()
	want := []string{string(BruteForce), string(Bucketed), string(HyRec), string(KIFF), string(NNDescent)}
	if len(algos) != len(want) {
		t.Fatalf("Algorithms() = %v, want %v", algos, want)
	}
	for i, a := range want {
		if algos[i] != a {
			t.Fatalf("Algorithms() = %v, want %v", algos, want)
		}
	}
	// Every listed algorithm must be buildable through the facade.
	d, _, _ := Toy()
	for _, a := range algos {
		if _, err := Build(d, Options{K: 1, Algorithm: Algorithm(a), Seed: 1}); err != nil {
			t.Errorf("algorithm %s unusable through facade: %v", a, err)
		}
	}
}

func TestLoadAndWriteRoundTrip(t *testing.T) {
	in := "a x 2\na y 1\nb x 4\nc z 1\n"
	d, err := Load(strings.NewReader(in), LoadOptions{Name: "rt"})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() != 3 || d.NumItems() != 3 {
		t.Fatalf("loaded %d users %d items", d.NumUsers(), d.NumItems())
	}
	var buf bytes.Buffer
	if err := WriteDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, LoadOptions{Name: "rt2"})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRatings() != d.NumRatings() {
		t.Errorf("round trip changed ratings: %d vs %d", back.NumRatings(), d.NumRatings())
	}
}

func TestGenerateMovieLens(t *testing.T) {
	d, err := GenerateMovieLens(0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Binary() {
		t.Error("MovieLens data must be weighted")
	}
	if d.Density() < 0.01 {
		t.Errorf("ML-style dataset should be dense, got %v", d.Density())
	}
}

func TestGeneratePresetUnknown(t *testing.T) {
	if _, err := GeneratePreset("unknown", 1, 1); err == nil {
		t.Error("unknown preset must be rejected")
	}
}

func TestMinRatingOption(t *testing.T) {
	d, err := GeneratePreset("gowalla", 0.002, 6)
	if err != nil {
		t.Fatal(err)
	}
	all, err := Build(d, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := Build(d, Options{K: 5, MinRating: 4})
	if err != nil {
		t.Fatal(err)
	}
	if filtered.Run.SimEvals >= all.Run.SimEvals {
		t.Errorf("MinRating did not reduce similarity work: %d vs %d",
			filtered.Run.SimEvals, all.Run.SimEvals)
	}
}

func TestLoadFileAndDefaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "edges.tsv")
	if err := os.WriteFile(path, []byte("a x 1\nb x 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadFile(path, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != path {
		t.Errorf("default dataset name = %q, want the path", ds.Name)
	}
	if ds.NumUsers() != 2 {
		t.Errorf("users = %d, want 2", ds.NumUsers())
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.tsv"), LoadOptions{}); err == nil {
		t.Error("missing file must error")
	}
}

func TestNewDatasetAndProfileFromMap(t *testing.T) {
	profiles := []Profile{
		ProfileFromMap(map[uint32]float64{0: 2, 3: 1}, false),
		ProfileFromMap(map[uint32]float64{3: 5}, false),
	}
	ds, err := NewDataset("manual", profiles, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumUsers() != 2 || ds.NumItems() != 4 || ds.NumRatings() != 3 {
		t.Errorf("shape: %d users %d items %d ratings", ds.NumUsers(), ds.NumItems(), ds.NumRatings())
	}
	// Out-of-range item must be rejected.
	if _, err := NewDataset("bad", profiles, 2); err == nil {
		t.Error("NewDataset must validate item range")
	}
}

func TestNewIndexAndQueryFacade(t *testing.T) {
	ds, _, _ := Toy()
	if _, err := NewIndex(ds, Options{Metric: "bogus"}); err == nil {
		t.Error("NewIndex must reject unknown metrics")
	}
	ix, err := NewIndex(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Coffee-and-cheese query matches Bob exactly.
	got, err := ix.Query(ProfileFromMap(map[uint32]float64{1: 1, 2: 1}, true), 1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 1 {
		t.Errorf("Query = %v, want Bob", got)
	}
}

func TestRecallRejectsBadMetric(t *testing.T) {
	ds, _, _ := Toy()
	res, err := Build(ds, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Recall(ds, res.Graph, Options{K: 1, Metric: "bogus"}, 0); err == nil {
		t.Error("Recall must reject unknown metrics")
	}
}

func TestBuildBruteForceRunFields(t *testing.T) {
	ds, _, _ := Toy()
	res, err := Build(ds, Options{K: 2, Algorithm: BruteForce})
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Algorithm != string(BruteForce) || res.Run.NumUsers != 4 || res.Run.K != 2 {
		t.Errorf("Run = %+v", res.Run)
	}
}

func TestMetricsListStable(t *testing.T) {
	ms := Metrics()
	if len(ms) < 5 {
		t.Errorf("Metrics = %v", ms)
	}
	for _, m := range ms {
		if _, err := Build(func() *Dataset { d, _, _ := Toy(); return d }(), Options{K: 1, Metric: m}); err != nil {
			t.Errorf("metric %s unusable through facade: %v", m, err)
		}
	}
}
