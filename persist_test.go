package kiff

import (
	"path/filepath"
	"testing"
)

// TestPersistedGraphScoresIdentically is the facade-level round-trip
// guarantee: a graph saved and loaded through the binary codec is
// bit-identical to the in-memory one, so recall computed against it is
// *exactly* equal — not approximately.
func TestPersistedGraphScoresIdentically(t *testing.T) {
	d, err := GeneratePreset("wikipedia", 0.02, 17)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{K: 8, Seed: 5}
	res, err := Build(d, opts)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	gpath := filepath.Join(dir, "graph.kfg")
	dpath := filepath.Join(dir, "data.kfd")
	if err := SaveGraph(gpath, res.Graph); err != nil {
		t.Fatal(err)
	}
	if err := SaveDataset(dpath, d); err != nil {
		t.Fatal(err)
	}

	g, err := LoadGraph(gpath)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := LoadDataset(dpath)
	if err != nil {
		t.Fatal(err)
	}

	// Recall over the loaded pair must be exactly the in-memory number:
	// the codec stores similarities and ratings bit-for-bit.
	want, err := Recall(d, res.Graph, opts, 100)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Recall(ds, g, opts, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("recall of loaded graph = %v, in-memory = %v (must be exactly equal)", got, want)
	}

	// A loaded dataset is immediately serviceable: index queries work
	// and the maintained path accepts it.
	ix, err := NewIndex(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Query(ds.Users[0], 5, -1); err != nil {
		t.Fatal(err)
	}
	m, err := NewMaintainer(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert(ds.Users[1].Clone()); err != nil {
		t.Fatal(err)
	}
	if err := m.Snapshot().Graph().Validate(); err != nil {
		t.Fatal(err)
	}
}
