# Multi-stage build for the kiff serving stack. The build stage
# compiles static binaries (no cgo, no external module dependencies —
# the repo is stdlib-only); the runtime stage is a minimal alpine with
# just the two binaries and a non-root user.
#
#   docker build -t kiffserve .
#   docker run -p 8080:8080 kiffserve -in /data/ratings.tsv -addr :8080
#
# See deploy/compose.yml for the full sharded + WAL + auth arrangement
# and docs/OPERATIONS.md for the runbook.

FROM golang:1.24-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
ENV CGO_ENABLED=0
RUN go build -trimpath -ldflags='-s -w' -o /out/kiffserve ./cmd/kiffserve \
 && go build -trimpath -ldflags='-s -w' -o /out/kiffknn ./cmd/kiffknn \
 && go build -trimpath -ldflags='-s -w' -o /out/kiffgen ./cmd/kiffgen

FROM alpine:3.20
RUN apk add --no-cache curl \
 && addgroup -S kiff && adduser -S -G kiff kiff \
 && mkdir -p /data /var/lib/kiff/wal /var/lib/kiff/ckpt \
 && chown -R kiff:kiff /data /var/lib/kiff
COPY --from=build /out/kiffserve /out/kiffknn /out/kiffgen /usr/local/bin/
USER kiff
EXPOSE 8080
# /healthz is exempt from auth and rate limiting by design, so the probe
# works whatever hardening flags the container runs with.
HEALTHCHECK --interval=10s --timeout=3s --start-period=30s \
  CMD curl -fsS http://localhost:8080/healthz || exit 1
ENTRYPOINT ["kiffserve"]
CMD ["-addr", ":8080"]
