// Benchmarks that regenerate every table and figure of the paper at a
// reduced, benchmark-friendly scale, plus ablation benches for the design
// choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Paper-sized numbers come from `kiffbench -scale 1` instead; these
// benches exist so the whole evaluation pipeline is exercised (and its
// allocations tracked) on every benchmark run.
package kiff

import (
	"bytes"
	"io"
	"path/filepath"
	"sync"
	"testing"

	"kiff/internal/core"
	"kiff/internal/dataset"
	"kiff/internal/experiments"
	"kiff/internal/knngraph"
	"kiff/internal/rcs"
	"kiff/internal/similarity"
	"kiff/internal/sparse"
)

// benchHarness is shared across benchmarks so dataset generation and
// ground truth are paid once, not once per bench.
var (
	benchOnce sync.Once
	benchH    *experiments.Harness
)

func harness() *experiments.Harness {
	benchOnce.Do(func() {
		benchH = experiments.New(experiments.Options{
			Scale:        0.02,
			Seed:         42,
			RecallSample: 200,
			KCap:         8,
		})
	})
	return benchH
}

func benchErr(b *testing.B, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
}

// --- One benchmark per paper table/figure ------------------------------

func BenchmarkTable1DatasetStats(b *testing.B) {
	b.ReportAllocs()
	h := harness()
	for i := 0; i < b.N; i++ {
		_, err := h.Table1()
		benchErr(b, err)
	}
}

func BenchmarkFig1Breakdown(b *testing.B) {
	b.ReportAllocs()
	h := harness()
	for i := 0; i < b.N; i++ {
		res, err := h.Fig1()
		benchErr(b, err)
		if i == 0 {
			b.ReportMetric(res.Breakdowns[0].SimilarityFrac, "simfrac")
		}
	}
}

func BenchmarkFig4ProfileCCDF(b *testing.B) {
	b.ReportAllocs()
	h := harness()
	for i := 0; i < b.N; i++ {
		_, err := h.Fig4()
		benchErr(b, err)
	}
}

func BenchmarkTable2Overall(b *testing.B) {
	b.ReportAllocs()
	h := harness()
	for i := 0; i < b.N; i++ {
		res, err := h.Table2()
		benchErr(b, err)
		if i == 0 {
			b.ReportMetric(res.Datasets[0].KIFF.Recall, "kiff-recall")
			b.ReportMetric(res.Datasets[0].SpeedUp, "speedup")
		}
	}
}

func BenchmarkTable3Gains(b *testing.B) {
	b.ReportAllocs()
	h := harness()
	t2, err := h.Table2()
	benchErr(b, err)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := h.Table3(t2)
		if i == 0 {
			b.ReportMetric(res.SpeedUpAvg, "speedup")
		}
	}
}

func BenchmarkTable4ItemProfileOverhead(b *testing.B) {
	b.ReportAllocs()
	h := harness()
	for i := 0; i < b.N; i++ {
		_, err := h.Table4()
		benchErr(b, err)
	}
}

func BenchmarkTable5RCSConstruction(b *testing.B) {
	b.ReportAllocs()
	h := harness()
	for i := 0; i < b.N; i++ {
		res, err := h.Table5()
		benchErr(b, err)
		if i == 0 {
			b.ReportMetric(res.Rows[0].AvgLen, "avg-rcs")
		}
	}
}

func BenchmarkFig5PhaseBreakdown(b *testing.B) {
	b.ReportAllocs()
	h := harness()
	for i := 0; i < b.N; i++ {
		_, err := h.Fig5()
		benchErr(b, err)
	}
}

func BenchmarkFig6Table6Truncation(b *testing.B) {
	b.ReportAllocs()
	h := harness()
	for i := 0; i < b.N; i++ {
		_, _, err := h.Fig6Table6()
		benchErr(b, err)
	}
}

func BenchmarkFig7Spearman(b *testing.B) {
	b.ReportAllocs()
	h := harness()
	for i := 0; i < b.N; i++ {
		res, err := h.Fig7()
		benchErr(b, err)
		if i == 0 && len(res.Points) > 0 {
			b.ReportMetric(res.MeanCosine, "spearman-cos")
		}
	}
}

func BenchmarkTable7Initialization(b *testing.B) {
	b.ReportAllocs()
	h := harness()
	for i := 0; i < b.N; i++ {
		res, err := h.Table7()
		benchErr(b, err)
		if i == 0 {
			b.ReportMetric(res.Rows[0].TopKRecall, "rcs-init-recall")
		}
	}
}

func BenchmarkFig8Convergence(b *testing.B) {
	b.ReportAllocs()
	h := harness()
	for i := 0; i < b.N; i++ {
		_, err := h.Fig8()
		benchErr(b, err)
	}
}

func BenchmarkTable8KSensitivity(b *testing.B) {
	b.ReportAllocs()
	h := harness()
	t2, err := h.Table2()
	benchErr(b, err)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := h.Table8(t2)
		benchErr(b, err)
	}
}

func BenchmarkFig9GammaSweep(b *testing.B) {
	b.ReportAllocs()
	h := harness()
	for i := 0; i < b.N; i++ {
		_, err := h.Fig9()
		benchErr(b, err)
	}
}

func BenchmarkTable9MovieLensLadder(b *testing.B) {
	b.ReportAllocs()
	h := harness()
	for i := 0; i < b.N; i++ {
		res, err := h.Table9()
		benchErr(b, err)
		if i == 0 {
			b.ReportMetric(res.Rows[0].AvgRCS, "ml1-avg-rcs")
		}
	}
}

func BenchmarkFig10Density(b *testing.B) {
	b.ReportAllocs()
	h := harness()
	for i := 0; i < b.N; i++ {
		_, err := h.Fig10()
		benchErr(b, err)
	}
}

// --- Ablation benches (DESIGN.md §4) ------------------------------------

func ablationDataset(b *testing.B) *dataset.Dataset {
	b.Helper()
	d, err := dataset.Wikipedia.Generate(0.05, 3)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkAblationRCSOrder isolates the value of ranking candidates by
// shared-item count: same pruning, same budget, shuffled order.
func BenchmarkAblationRCSOrder(b *testing.B) {
	d := ablationDataset(b)
	for _, mode := range []struct {
		name    string
		shuffle bool
	}{{"ranked", false}, {"random-order", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var evals int64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(10)
				cfg.RandomOrderRCS = mode.shuffle
				cfg.Seed = int64(i)
				res, err := core.Build(d, cfg)
				benchErr(b, err)
				evals = res.Run.SimEvals
			}
			b.ReportMetric(float64(evals), "sim-evals")
		})
	}
}

// BenchmarkAblationPivot contrasts the §II-D pivot rule against complete
// (symmetric) candidate sets: same information, twice the memory.
func BenchmarkAblationPivot(b *testing.B) {
	d := ablationDataset(b)
	for _, mode := range []struct {
		name    string
		noPivot bool
	}{{"pivot", false}, {"no-pivot", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var total int
			for i := 0; i < b.N; i++ {
				sets := rcs.Build(d, rcs.BuildOptions{NoPivot: mode.noPivot})
				total = sets.BuildStats.TotalCandidates
			}
			b.ReportMetric(float64(total), "candidates")
		})
	}
}

// BenchmarkAblationGammaInf contrasts one-shot RCS exhaustion (the exact
// mode of §III-D) against the default iterative refinement.
func BenchmarkAblationGammaInf(b *testing.B) {
	d := ablationDataset(b)
	for _, mode := range []struct {
		name  string
		gamma int
		beta  float64
	}{{"gamma-2k", 0, 0.001}, {"gamma-inf", -1, -1}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(10)
				cfg.Gamma = mode.gamma
				cfg.Beta = mode.beta
				_, err := core.Build(d, cfg)
				benchErr(b, err)
			}
		})
	}
}

// BenchmarkAblationRatingThreshold measures the §VII future-work
// heuristic on a weighted dataset: inserting only positively-rated items
// into the RCSs shrinks them and speeds up the run.
func BenchmarkAblationRatingThreshold(b *testing.B) {
	d, err := dataset.Gowalla.Generate(0.005, 3)
	benchErr(b, err)
	for _, mode := range []struct {
		name      string
		minRating float64
	}{{"all-ratings", 0}, {"rating-ge-3", 3}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var evals int64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(10)
				cfg.MinRating = mode.minRating
				res, err := core.Build(d, cfg)
				benchErr(b, err)
				evals = res.Run.SimEvals
			}
			b.ReportMetric(float64(evals), "sim-evals")
		})
	}
}

// --- Micro-benchmarks of the hot paths ----------------------------------

func BenchmarkSparseCommonCount(b *testing.B) {
	a := sparse.Vector{IDs: seqIDs(0, 40, 2)}
	c := sparse.Vector{IDs: seqIDs(1, 40, 3)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sparse.CommonCount(a, c)
	}
}

func BenchmarkSimilarityCosineWeighted(b *testing.B) {
	d, err := dataset.Gowalla.Generate(0.002, 5)
	benchErr(b, err)
	sim := similarity.Cosine{}.Prepare(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim(uint32(i%d.NumUsers()), uint32((i*7+1)%d.NumUsers()))
	}
}

// BenchmarkSimilarityKernels contrasts the batched one-vs-many kernels
// against the pairwise reference on the wikipedia fixture: one pivot
// scored against a γ=2k-sized candidate chunk, the refine loop's unit of
// work. The batch path scatters the pivot once per chunk; the pairwise
// path re-merges it per candidate.
func BenchmarkSimilarityKernels(b *testing.B) {
	d := ablationDataset(b)
	const gamma = 20 // 2k for the k=10 ablation fixture
	pivot := uint32(0)
	cands := make([]uint32, gamma)
	for i := range cands {
		cands[i] = uint32(i + 1)
	}
	scores := make([]float64, gamma)
	for _, name := range []string{"cosine", "jaccard", "adamic-adar"} {
		m, err := similarity.ByName(name)
		benchErr(b, err)
		bm, ok := m.(similarity.BatchMetric)
		if !ok {
			b.Fatalf("%s has no batch kernel", name)
		}
		kernel := bm.PrepareBatch(d)()
		pair := m.Prepare(d)
		b.Run(name+"/batch", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				kernel.ScoreInto(scores, pivot, cands)
			}
		})
		b.Run(name+"/pairwise", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j, v := range cands {
					scores[j] = pair(pivot, v)
				}
			}
		})
	}
}

func BenchmarkRCSBuildWikipedia(b *testing.B) {
	d := ablationDataset(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rcs.Build(d, rcs.BuildOptions{})
	}
}

func BenchmarkKIFFEndToEnd(b *testing.B) {
	d := ablationDataset(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := core.Build(d, core.DefaultConfig(10))
		benchErr(b, err)
	}
}

// BenchmarkAblationBucketed sweeps the bucketed engine's recall-vs-cost
// knob against standard KIFF on the same fixture: more hash bands and
// refinement sweeps buy recall with extra similarity evaluations. The
// sim-evals and recall metrics are deterministic per config; ns/op is
// what varies run to run.
func BenchmarkAblationBucketed(b *testing.B) {
	d := ablationDataset(b)
	exact, err := Build(d, Options{K: 10, Seed: 3, Algorithm: BruteForce})
	benchErr(b, err)
	configs := []struct {
		name string
		opts Options
	}{
		{"kiff-standard", Options{K: 10, Seed: 3}},
		{"bucketed-lean/b5-s96-w1", Options{K: 10, Seed: 3, Algorithm: Bucketed, Bands: 5, BucketSize: 96, Sweeps: 1}},
		{"bucketed-default/b4-s192-w2", Options{K: 10, Seed: 3, Algorithm: Bucketed}},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			var res *Result
			for i := 0; i < b.N; i++ {
				res, err = Build(d, cfg.opts)
				benchErr(b, err)
			}
			b.ReportMetric(float64(res.Run.SimEvals), "sim-evals")
			b.ReportMetric(graphRecall(exact.Graph, res.Graph), "recall")
		})
	}
}

// graphRecall is the fraction of exact k-NN edges present in got.
func graphRecall(exact, got *Graph) float64 {
	var hit, total int
	for u := 0; u < exact.NumUsers(); u++ {
		in := make(map[uint32]bool)
		for _, e := range got.Neighbors(uint32(u)) {
			in[e.ID] = true
		}
		for _, e := range exact.Neighbors(uint32(u)) {
			total++
			if in[e.ID] {
				hit++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(hit) / float64(total)
}

func BenchmarkGraphBinaryEncode(b *testing.B) {
	d := ablationDataset(b)
	res, err := core.Build(d, core.DefaultConfig(10))
	benchErr(b, err)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := res.Graph.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphBinaryDecode(b *testing.B) {
	d := ablationDataset(b)
	res, err := core.Build(d, core.DefaultConfig(10))
	benchErr(b, err)
	var buf bytes.Buffer
	if _, err := res.Graph.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := knngraph.ReadBinary(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCheckpoint builds the ablation fixture once and saves the graph
// and dataset checkpoints for the load-path benchmarks.
func benchCheckpoint(b *testing.B) (gpath, dpath string) {
	b.Helper()
	d := ablationDataset(b)
	res, err := core.Build(d, core.DefaultConfig(10))
	benchErr(b, err)
	dir := b.TempDir()
	gpath = filepath.Join(dir, "graph.kfg")
	dpath = filepath.Join(dir, "data.kfd")
	benchErr(b, SaveGraph(gpath, res.Graph))
	benchErr(b, SaveDataset(dpath, d))
	return gpath, dpath
}

// BenchmarkGraphLoadHeap vs BenchmarkGraphLoadMapped pin the mmap-path
// property: the heap load allocates O(edges), the mapped load O(1) —
// compare allocs/op and bytes/op between the two.
func BenchmarkGraphLoadHeap(b *testing.B) {
	gpath, _ := benchCheckpoint(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := LoadGraph(gpath)
		benchErr(b, err)
		_ = g
	}
}

func BenchmarkGraphLoadMapped(b *testing.B) {
	gpath, _ := benchCheckpoint(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mg, err := LoadGraphMapped(gpath)
		benchErr(b, err)
		benchErr(b, mg.Close())
	}
}

// Dataset loads: the mapped path still allocates the O(|U|) profile
// headers, but the ID/rating payload arenas stay in the mapping.
func BenchmarkDatasetLoadHeap(b *testing.B) {
	_, dpath := benchCheckpoint(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := LoadDataset(dpath)
		benchErr(b, err)
		_ = d
	}
}

func BenchmarkDatasetLoadMapped(b *testing.B) {
	_, dpath := benchCheckpoint(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		md, err := LoadDatasetMapped(dpath)
		benchErr(b, err)
		benchErr(b, md.Close())
	}
}

// BenchmarkSnapshotPublish measures the writer-side cost of one mutation
// batch over a *fixed-size* population: a rating update, the single-user
// Rebuild it dirties, and the snapshot publication (graph export + frozen
// dataset view). Inserts would grow the population with b.N and skew the
// per-op numbers.
func BenchmarkSnapshotPublish(b *testing.B) {
	d := ablationDataset(b)
	m, err := NewMaintainer(d, Options{K: 10})
	benchErr(b, err)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.AddRating(uint32(i%m.Dataset().NumUsers()), uint32(i%40), float64(1+i%5)); err != nil {
			b.Fatal(err)
		}
		if err := m.Rebuild(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotQuery measures the reader-side serving path: a
// budgeted profile query against a published snapshot.
func BenchmarkSnapshotQuery(b *testing.B) {
	d := ablationDataset(b)
	m, err := NewMaintainer(d, Options{K: 10})
	benchErr(b, err)
	s := m.Snapshot()
	profile := m.Dataset().Users[1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query(profile, 10, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func seqIDs(start, n, step int) []uint32 {
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(start + i*step)
	}
	return ids
}
