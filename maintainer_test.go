package kiff

import (
	"math"
	"math/rand"
	"testing"

	"kiff/internal/similarity"
)

// TestMaintainerInsertStreamConvergesToColdBuild is the headline property
// of incremental maintenance: streaming the last 10% of a dataset's users
// through Maintainer.Insert — in random order — must converge to the same
// recall as a cold Build over the final dataset (within 5%), while
// spending measurably fewer similarity evaluations than that cold build.
func TestMaintainerInsertStreamConvergesToColdBuild(t *testing.T) {
	full, err := GeneratePreset("wikipedia", 0.02, 31)
	if err != nil {
		t.Fatal(err)
	}
	n := full.NumUsers()
	streamLen := n / 10
	k := 10

	for _, shuffleSeed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(shuffleSeed))
		perm := rng.Perm(n)
		profiles := make([]Profile, 0, n)
		for _, u := range perm {
			profiles = append(profiles, full.Users[u])
		}
		base, err := NewDataset("stream-base", profiles[:n-streamLen], full.NumItems())
		if err != nil {
			t.Fatal(err)
		}

		m, err := NewMaintainer(base, Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range profiles[n-streamLen:] {
			if _, err := m.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		maintained := m.Graph()
		if err := maintained.Validate(); err != nil {
			t.Fatalf("seed %d: maintained graph invalid: %v", shuffleSeed, err)
		}
		if maintained.NumUsers() != n {
			t.Fatalf("seed %d: maintained graph has %d users, want %d", shuffleSeed, maintained.NumUsers(), n)
		}

		cold, err := Build(m.Dataset(), Options{K: k})
		if err != nil {
			t.Fatal(err)
		}

		// Sampled recall (bruteforce.Sampled under the hood), same seed for
		// both graphs so the sample is identical.
		scoreOpts := Options{K: k, Seed: 99}
		coldRecall, err := Recall(m.Dataset(), cold.Graph, scoreOpts, 300)
		if err != nil {
			t.Fatal(err)
		}
		maintRecall, err := Recall(m.Dataset(), maintained, scoreOpts, 300)
		if err != nil {
			t.Fatal(err)
		}
		if maintRecall < 0.95*coldRecall {
			t.Errorf("seed %d: maintained recall %.4f < 0.95 × cold recall %.4f",
				shuffleSeed, maintRecall, coldRecall)
		}

		// The whole point of maintenance: far fewer similarity evaluations
		// than reconstructing from scratch.
		maintEvals := m.Stats().SimEvals
		if maintEvals == 0 {
			t.Fatalf("seed %d: maintenance evals not counted", shuffleSeed)
		}
		if maintEvals >= cold.Run.SimEvals*8/10 {
			t.Errorf("seed %d: maintenance cost not measurably lower: %d evals vs cold %d",
				shuffleSeed, maintEvals, cold.Run.SimEvals)
		}
		t.Logf("seed %d: recall %.4f (cold %.4f), evals %d (cold %d, ratio %.2f)",
			shuffleSeed, maintRecall, coldRecall, maintEvals, cold.Run.SimEvals,
			float64(maintEvals)/float64(cold.Run.SimEvals))
	}
}

// TestMaintainerRebuildRefreshesDirtyUsers covers the rating-update path:
// after AddRating mutations, Rebuild must re-rank the dirty user exactly
// (its candidate set provably covers every positive-similarity user) and
// leave no stale similarity anywhere in the graph.
func TestMaintainerRebuildRefreshesDirtyUsers(t *testing.T) {
	d, err := GeneratePreset("gowalla", 0.002, 32) // weighted ratings
	if err != nil {
		t.Fatal(err)
	}
	k := 5
	// Beta < 0: exact per-user candidate exhaustion, so the rebuilt user's
	// neighborhood is exactly the positive prefix of its true top-k.
	m, err := NewMaintainer(d, Options{K: k, Beta: -1})
	if err != nil {
		t.Fatal(err)
	}

	target := uint32(3)
	// Shift several of the target's ratings and give it two new items.
	prof := m.Dataset().Users[target]
	for i := 0; i < prof.Len() && i < 3; i++ {
		if err := m.AddRating(target, prof.IDs[i], prof.Weight(i)+2); err != nil {
			t.Fatal(err)
		}
	}
	novel := uint32(m.Dataset().NumItems())
	if err := m.AddRating(target, novel, 5); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRating(target, novel+1, 4); err != nil {
		t.Fatal(err)
	}

	dirty := m.Dirty()
	if len(dirty) != 1 || dirty[0] != target {
		t.Fatalf("Dirty() = %v, want [%d]", dirty, target)
	}
	if err := m.Rebuild(nil); err != nil {
		t.Fatal(err)
	}
	if len(m.Dirty()) != 0 {
		t.Fatalf("Dirty() = %v after Rebuild, want empty", m.Dirty())
	}

	g := m.Graph()
	if err := g.Validate(); err != nil {
		t.Fatalf("rebuilt graph invalid: %v", err)
	}

	// No stale similarities may survive anywhere: every edge must carry the
	// post-mutation similarity of its endpoints.
	sim := similarity.Cosine{}.Prepare(m.Dataset())
	for u := 0; u < g.NumUsers(); u++ {
		for _, nb := range g.Neighbors(uint32(u)) {
			if want := sim(uint32(u), nb.ID); math.Abs(nb.Sim-want) > 1e-12 {
				t.Fatalf("stale edge %d→%d: recorded sim %v, true sim %v", u, nb.ID, nb.Sim, want)
			}
		}
	}

	// The rebuilt user's neighborhood must match the exact graph's positive
	// prefix similarity-for-similarity.
	exact, err := Build(m.Dataset(), Options{K: k, Gamma: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := exact.Graph.Neighbors(target)
	got := g.Neighbors(target)
	if len(got) != len(want) {
		t.Fatalf("rebuilt user has %d neighbors, exact has %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i].Sim-want[i].Sim) > 1e-12 {
			t.Fatalf("rebuilt user neighbor %d: sim %v, exact %v", i, got[i].Sim, want[i].Sim)
		}
	}

	// And the overall graph quality must stay high.
	recall, err := Recall(m.Dataset(), g, Options{K: k}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if recall < 0.9 {
		t.Errorf("post-rebuild recall = %.4f, want ≥ 0.9", recall)
	}
}

func TestMaintainerInsertEdgeCases(t *testing.T) {
	d, _, _ := Toy()
	m, err := NewMaintainer(d, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}

	// An empty profile overlaps nobody: it joins the population with no
	// neighbors and costs zero similarity evaluations.
	before := m.Stats().SimEvals
	id, err := m.Insert(Profile{})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().SimEvals; got != before {
		t.Errorf("empty insert cost %d evals", got-before)
	}
	if nbs := m.Graph().Neighbors(id); len(nbs) != 0 {
		t.Errorf("empty profile has neighbors %v", nbs)
	}

	// A profile referencing brand-new items grows the item space.
	items := uint32(m.Dataset().NumItems())
	id2, err := m.Insert(ProfileFromMap(map[uint32]float64{items: 1, items + 3: 1}, true))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Dataset().NumItems(); got != int(items)+4 {
		t.Errorf("NumItems = %d after novel-item insert, want %d", got, items+4)
	}

	// A clone of Alice (user 0) must become her top neighbor with sim 1.
	clone := m.Dataset().Users[0].Clone()
	id3, err := m.Insert(clone)
	if err != nil {
		t.Fatal(err)
	}
	nbs := m.Graph().Neighbors(id3)
	if len(nbs) == 0 || nbs[0].ID != 0 || math.Abs(nbs[0].Sim-1) > 1e-12 {
		t.Errorf("clone's neighbors = %v, want user 0 at sim 1", nbs)
	}
	alice := m.Graph().Neighbors(0)
	if len(alice) == 0 || alice[0].ID != id3 {
		t.Errorf("Alice's neighbors = %v, want the clone %d first", alice, id3)
	}

	if err := m.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.Graph().NumUsers(); got != 4+3 {
		t.Errorf("NumUsers = %d, want 7", got)
	}
	_ = id2

	// The maintainer is KIFF-specific.
	if _, err := NewMaintainer(d, Options{K: 2, Algorithm: NNDescent}); err == nil {
		t.Error("NewMaintainer must reject non-KIFF algorithms")
	}
	if _, err := NewMaintainer(d, Options{K: 0}); err == nil {
		t.Error("NewMaintainer must validate options")
	}
}

// TestMaintainerNonIncrementalMetric exercises the full re-preparation
// fallback: Adamic–Adar has per-item precomputed state and no
// incremental form, so every mutation rebinds the metric — results must
// still be exact for the inserted user.
func TestMaintainerNonIncrementalMetric(t *testing.T) {
	d, err := GeneratePreset("wikipedia", 0.01, 33)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaintainer(d, Options{K: 5, Metric: "adamic-adar", Beta: -1})
	if err != nil {
		t.Fatal(err)
	}
	clone := m.Dataset().Users[1].Clone()
	id, err := m.Insert(clone)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddRating(id, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Rebuild(nil); err != nil {
		t.Fatal(err)
	}
	g := m.Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The inserted user's neighborhood must match the exact build's
	// positive prefix under the same metric.
	exact, err := Build(m.Dataset(), Options{K: 5, Metric: "adamic-adar", Gamma: -1})
	if err != nil {
		t.Fatal(err)
	}
	want, got := exact.Graph.Neighbors(id), g.Neighbors(id)
	if len(got) != len(want) {
		t.Fatalf("inserted user has %d neighbors, exact has %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i].Sim-want[i].Sim) > 1e-12 {
			t.Fatalf("neighbor %d: sim %v, exact %v", i, got[i].Sim, want[i].Sim)
		}
	}
}
