package kiff

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// snapshotFixture builds a small random dataset plus a Maintainer over it.
func snapshotFixture(t testing.TB, users, items int, seed int64) *Maintainer {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	profiles := make([]Profile, users)
	for u := range profiles {
		m := map[uint32]float64{}
		for j := 0; j < 3+rng.Intn(6); j++ {
			m[uint32(rng.Intn(items))] = float64(1 + rng.Intn(5))
		}
		profiles[u] = ProfileFromMap(m, false)
	}
	d, err := NewDataset("snapfix", profiles, items)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaintainer(d, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randomProfile(rng *rand.Rand, items int) Profile {
	m := map[uint32]float64{}
	for j := 0; j < 3+rng.Intn(6); j++ {
		m[uint32(rng.Intn(items))] = float64(1 + rng.Intn(5))
	}
	return ProfileFromMap(m, false)
}

func TestSnapshotPublishedAtConstruction(t *testing.T) {
	m := snapshotFixture(t, 60, 40, 7)
	s := m.Snapshot()
	if s == nil {
		t.Fatal("no snapshot published by NewMaintainer")
	}
	if s.Version() != 1 {
		t.Errorf("initial version = %d, want 1", s.Version())
	}
	if s.NumUsers() != 60 || s.Graph().NumUsers() != 60 {
		t.Errorf("snapshot covers %d/%d users, want 60", s.NumUsers(), s.Graph().NumUsers())
	}
	if err := s.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	// The snapshot graph equals the live graph at publication time.
	live := m.Graph()
	for u := 0; u < live.NumUsers(); u++ {
		a, b := live.Neighbors(uint32(u)), s.Neighbors(uint32(u))
		if len(a) != len(b) {
			t.Fatalf("user %d: snapshot list diverges from live graph", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("user %d: snapshot entry %d = %v, live %v", u, i, b[i], a[i])
			}
		}
	}
}

func TestSnapshotIsolatedFromLaterMutations(t *testing.T) {
	m := snapshotFixture(t, 50, 30, 11)
	rng := rand.New(rand.NewSource(12))

	old := m.Snapshot()
	oldUsers := old.NumUsers()
	oldEdges := old.Graph().NumEdges()
	type edge struct {
		u  uint32
		nb Neighbor
	}
	var oldView []edge
	for u := 0; u < old.Graph().NumUsers(); u++ {
		for _, nb := range old.Neighbors(uint32(u)) {
			oldView = append(oldView, edge{uint32(u), nb})
		}
	}

	// Hammer the maintainer: inserts, rating updates, rebuilds.
	for i := 0; i < 25; i++ {
		if _, err := m.Insert(randomProfile(rng, 30)); err != nil {
			t.Fatal(err)
		}
		if err := m.AddRating(uint32(rng.Intn(50)), uint32(rng.Intn(30)), float64(1+rng.Intn(5))); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Rebuild(nil); err != nil {
		t.Fatal(err)
	}

	// The old snapshot must be bit-for-bit what it was.
	if old.NumUsers() != oldUsers || old.Graph().NumEdges() != oldEdges {
		t.Fatalf("old snapshot changed shape: %d users %d edges, was %d/%d",
			old.NumUsers(), old.Graph().NumEdges(), oldUsers, oldEdges)
	}
	i := 0
	for u := 0; u < old.Graph().NumUsers(); u++ {
		for _, nb := range old.Neighbors(uint32(u)) {
			if oldView[i].u != uint32(u) || oldView[i].nb != nb {
				t.Fatalf("old snapshot edge %d changed: %v vs %v", i, oldView[i], nb)
			}
			i++
		}
	}

	// And the new snapshot reflects the mutations.
	cur := m.Snapshot()
	if cur.Version() <= old.Version() {
		t.Fatalf("version did not advance: %d after %d", cur.Version(), old.Version())
	}
	if cur.NumUsers() != 75 {
		t.Fatalf("new snapshot has %d users, want 75", cur.NumUsers())
	}
}

func TestSnapshotQueryMatchesIndex(t *testing.T) {
	m := snapshotFixture(t, 80, 50, 21)
	s := m.Snapshot()
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		q := randomProfile(rng, 50)
		got, err := s.Query(q, 5, -1)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := NewViewIndex(s.Dataset(), Options{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		want, err := ix.Query(q, 5, -1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || math.Abs(got[i].Sim-want[i].Sim) > 1e-12 {
				t.Fatalf("trial %d result %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestInsertBatchPublishesOnce(t *testing.T) {
	m := snapshotFixture(t, 40, 30, 31)
	rng := rand.New(rand.NewSource(32))
	before := m.Snapshot().Version()
	batch := make([]Profile, 8)
	for i := range batch {
		batch[i] = randomProfile(rng, 30)
	}
	ids, err := m.InsertBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 8 {
		t.Fatalf("inserted %d users, want 8", len(ids))
	}
	after := m.Snapshot()
	if after.Version() != before+1 {
		t.Errorf("batch published %d snapshots, want 1", after.Version()-before)
	}
	if after.NumUsers() != 48 {
		t.Errorf("snapshot has %d users, want 48", after.NumUsers())
	}
	if err := after.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentServing is the serving-safety property of the snapshot
// machinery: N reader goroutines continuously load snapshots and serve
// Neighbors/Query from them while the single writer streams Insert,
// AddRating and Rebuild. Run under -race (the CI race job does), this
// both exercises the copy-on-write discipline of the dataset mutators
// and asserts every observed snapshot is internally consistent.
func TestConcurrentServing(t *testing.T) {
	const (
		readers = 4
		items   = 40
		ops     = 120
	)
	m := snapshotFixture(t, 80, items, 41)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			lastVersion := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := m.Snapshot()
				if s.Version() < lastVersion {
					t.Errorf("snapshot version went backwards: %d after %d", s.Version(), lastVersion)
					return
				}
				lastVersion = s.Version()

				// Internal consistency: graph and dataset cover the same
				// population, the graph is structurally valid, every edge
				// stays inside it, and the frozen dataset passes its own
				// (exhaustive) invariant check.
				g := s.Graph()
				n := s.NumUsers()
				if g.NumUsers() != n {
					t.Errorf("snapshot v%d: graph covers %d users, dataset %d", s.Version(), g.NumUsers(), n)
					return
				}
				if err := g.Validate(); err != nil {
					t.Errorf("snapshot v%d: invalid graph: %v", s.Version(), err)
					return
				}
				for u := 0; u < n; u++ {
					for _, nb := range s.Neighbors(uint32(u)) {
						if int(nb.ID) >= n {
							t.Errorf("snapshot v%d: edge %d→%d escapes population %d", s.Version(), u, nb.ID, n)
							return
						}
					}
				}
				if err := s.Dataset().Validate(); err != nil {
					t.Errorf("snapshot v%d: invalid dataset: %v", s.Version(), err)
					return
				}
				if _, err := s.Query(randomProfile(rng, items), 3, 64); err != nil {
					t.Errorf("snapshot v%d: query: %v", s.Version(), err)
					return
				}
			}
		}(int64(100 + r))
	}

	writerRng := rand.New(rand.NewSource(55))
	for i := 0; i < ops; i++ {
		switch writerRng.Intn(4) {
		case 0, 1:
			if _, err := m.Insert(randomProfile(writerRng, items)); err != nil {
				t.Error(err)
			}
		case 2:
			u := uint32(writerRng.Intn(m.Dataset().NumUsers()))
			if err := m.AddRating(u, uint32(writerRng.Intn(items)), float64(1+writerRng.Intn(5))); err != nil {
				t.Error(err)
			}
		case 3:
			if err := m.Rebuild(nil); err != nil {
				t.Error(err)
			}
		}
	}
	if err := m.Rebuild(nil); err != nil {
		t.Error(err)
	}
	close(stop)
	wg.Wait()

	final := m.Snapshot()
	if err := final.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	if final.NumUsers() != final.Graph().NumUsers() {
		t.Fatal("final snapshot inconsistent")
	}
}
