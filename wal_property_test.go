package kiff

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"kiff/internal/wal"
)

// The replay-equivalence property behind the zero-loss contract:
// checkpoint + write-ahead-log replay must reconstruct the same served
// state as applying every mutation directly — inserts, ratings and
// rebuild boundaries alike, unsharded and per shard. The comparison
// unit is what clients see (every neighbor list and probe-query
// answer), the same equality the black-box chaos oracle asserts.

// synthWALDataset builds a small deterministic dataset; calling it
// twice with one seed yields two independent, identical copies (the
// direct and the logged sides must not share mutable state).
func synthWALDataset(t *testing.T, seed int64, users, items int) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	profiles := make([]Profile, users)
	for u := range profiles {
		n := 3 + rng.Intn(5)
		m := map[uint32]float64{}
		for len(m) < n {
			m[uint32(rng.Intn(items))] = float64(1 + rng.Intn(5))
		}
		profiles[u] = ProfileFromMap(m, false)
	}
	d, err := NewDataset("wal-prop", profiles, items)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// walPropOp is one mutation of the generated stream.
type walPropOp struct {
	kind   int // 0 insert, 1 rating, 2 rebuild
	p      Profile
	user   uint32
	item   uint32
	rating float64
	dirty  []uint32 // rebuild: nil = rebuild the accumulated dirty set
}

// genWALPropOps derives a mutation stream whose rating/rebuild targets
// always reference users live at that point. The stream is materialized
// once and applied to both sides, so generation-time randomness cannot
// desynchronize them.
func genWALPropOps(seed int64, n, baseUsers, items int) []walPropOp {
	rng := rand.New(rand.NewSource(seed ^ 0x0b5))
	cur := baseUsers
	ops := make([]walPropOp, 0, n)
	for i := 0; i < n; i++ {
		switch w := rng.Intn(10); {
		case w < 3:
			m := map[uint32]float64{}
			for len(m) < 2+rng.Intn(4) {
				m[uint32(rng.Intn(items))] = float64(1 + rng.Intn(5))
			}
			ops = append(ops, walPropOp{kind: 0, p: ProfileFromMap(m, false)})
			cur++
		case w < 8:
			ops = append(ops, walPropOp{kind: 1,
				user: uint32(rng.Intn(cur)), item: uint32(rng.Intn(items)),
				rating: float64(1 + rng.Intn(5))})
		default:
			var dirty []uint32
			if rng.Intn(2) == 0 {
				seen := map[uint32]bool{}
				for len(seen) < 1+rng.Intn(3) {
					seen[uint32(rng.Intn(cur))] = true
				}
				for u := range seen {
					dirty = append(dirty, u)
				}
			}
			ops = append(ops, walPropOp{kind: 2, dirty: dirty})
		}
	}
	return ops
}

// walServed is the client-visible surface of one side.
type walServed interface {
	NumUsers() int
	Neighbors(u uint32) ([]Neighbor, error)
	Query(p Profile, k, budget int) ([]Neighbor, error)
}

// snapServed adapts a Snapshot (whose Neighbors has no error return).
type snapServed struct{ s *Snapshot }

func (v snapServed) NumUsers() int                                 { return v.s.NumUsers() }
func (v snapServed) Neighbors(u uint32) ([]Neighbor, error)        { return v.s.Neighbors(u), nil }
func (v snapServed) Query(p Profile, k, b int) ([]Neighbor, error) { return v.s.Query(p, k, b) }

// requireServedEqual asserts two sides answer identically: every
// neighbor list and a batch of seeded probe queries.
func requireServedEqual(t *testing.T, got, want walServed, seed int64, items int) {
	t.Helper()
	if got.NumUsers() != want.NumUsers() {
		t.Fatalf("populations diverged: replayed=%d direct=%d", got.NumUsers(), want.NumUsers())
	}
	for u := 0; u < want.NumUsers(); u++ {
		n1, err1 := got.Neighbors(uint32(u))
		n2, err2 := want.Neighbors(uint32(u))
		if err1 != nil || err2 != nil {
			t.Fatalf("neighbors(%d): replayed err=%v direct err=%v", u, err1, err2)
		}
		if !reflect.DeepEqual(n1, n2) {
			t.Fatalf("neighbors(%d) diverged\n replayed: %v\n direct:   %v", u, n1, n2)
		}
	}
	rng := rand.New(rand.NewSource(seed*101 + 7))
	for p := 0; p < 20; p++ {
		m := map[uint32]float64{}
		for len(m) < 2+rng.Intn(4) {
			m[uint32(rng.Intn(items))] = float64(1 + rng.Intn(5))
		}
		k := 3 + rng.Intn(6)
		r1, err1 := got.Query(ProfileFromMap(m, false), k, -1)
		r2, err2 := want.Query(ProfileFromMap(m, false), k, -1)
		if err1 != nil || err2 != nil {
			t.Fatalf("probe %d: replayed err=%v direct err=%v", p, err1, err2)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("probe %d diverged\n replayed: %v\n direct:   %v", p, r1, r2)
		}
	}
}

// TestWALCheckpointReplayEquivalence: unsharded. A logged maintainer
// runs a mutation stream with a checkpoint (and log rotation) in the
// middle, "crashes", and is rebuilt from checkpoint + replay; a twin
// maintainer applies the same stream directly with no log. The two must
// serve identically.
func TestWALCheckpointReplayEquivalence(t *testing.T) {
	const users, items, nops = 60, 40, 120
	for _, seed := range []int64{3, 11} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			opts := Options{K: 8}
			direct, err := NewMaintainer(synthWALDataset(t, seed, users, items), opts)
			if err != nil {
				t.Fatal(err)
			}
			logged, err := NewMaintainer(synthWALDataset(t, seed, users, items), opts)
			if err != nil {
				t.Fatal(err)
			}
			walPath := filepath.Join(t.TempDir(), "wal.kfl")
			if _, err := logged.OpenWAL(walPath, wal.Options{Sync: wal.SyncNever}); err != nil {
				t.Fatal(err)
			}

			ops := genWALPropOps(seed, nops, users, items)
			applyOp := func(m *Maintainer, op walPropOp) {
				t.Helper()
				var err error
				switch op.kind {
				case 0:
					_, err = m.Insert(op.p)
				case 1:
					err = m.AddRating(op.user, op.item, op.rating)
				case 2:
					err = m.Rebuild(op.dirty)
				}
				if err != nil {
					t.Fatalf("apply %+v: %v", op, err)
				}
			}

			ckDir := t.TempDir()
			var ckLSN uint64
			for i, op := range ops {
				applyOp(direct, op)
				applyOp(logged, op)
				if i == nops/2 {
					// Mid-stream checkpoint: persist the logged side's
					// state, record the horizon, rotate the log — replay
					// below must stitch checkpoint and tail back together.
					// Checkpoints only happen at rebuild boundaries (the
					// server's writer flushes pending ratings first): the
					// dirty set is not persisted, so rotating away
					// AddRating records whose rebuild is still pending
					// would shrink a later Rebuild(All)'s target set.
					quiesce := walPropOp{kind: 2}
					applyOp(direct, quiesce)
					applyOp(logged, quiesce)
					saveCheckpointPair(t, ckDir, logged)
					ckLSN = logged.WALLastLSN()
					if err := logged.WALRotate(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := logged.CloseWAL(); err != nil {
				t.Fatal(err)
			}

			g, err := LoadGraph(filepath.Join(ckDir, "graph.kfg"))
			if err != nil {
				t.Fatal(err)
			}
			ds, err := LoadDataset(filepath.Join(ckDir, "data.kfd"))
			if err != nil {
				t.Fatal(err)
			}
			replayed, err := NewMaintainerFromGraph(ds, g, Options{})
			if err != nil {
				t.Fatal(err)
			}
			stats, err := replayed.OpenWAL(walPath, wal.Options{Sync: wal.SyncNever, FromLSN: ckLSN})
			if err != nil {
				t.Fatal(err)
			}
			if stats.Replayed == 0 {
				t.Fatal("replay applied 0 records; the post-checkpoint tail is missing")
			}
			requireServedEqual(t, snapServed{replayed.Snapshot()}, snapServed{direct.Snapshot()}, seed, items)
		})
	}
}

func saveCheckpointPair(t *testing.T, dir string, m *Maintainer) {
	t.Helper()
	for _, f := range []struct {
		name  string
		write func(*os.File) error
	}{
		{"graph.kfg", func(f *os.File) error { return WriteGraphBinary(f, m.Graph()) }},
		{"data.kfd", func(f *os.File) error { return WriteDatasetBinary(f, m.Dataset()) }},
	} {
		fh, err := os.Create(filepath.Join(dir, f.name))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.write(fh); err != nil {
			t.Fatal(err)
		}
		if err := fh.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALShardedCheckpointReplayEquivalence: the same property through
// the pool — per-shard logs, Pool.Save recording per-shard horizons and
// rotating, LoadShardedMaintainerWAL replaying every shard in parallel.
func TestWALShardedCheckpointReplayEquivalence(t *testing.T) {
	const users, items, nops, shards = 60, 40, 120, 4
	for _, seed := range []int64{5, 21} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			opts := Options{K: 8}
			directPool, err := NewShardedMaintainer(synthWALDataset(t, seed, users, items), shards, opts)
			if err != nil {
				t.Fatal(err)
			}
			walDir := t.TempDir()
			loggedPool, err := NewShardedMaintainerWAL(synthWALDataset(t, seed, users, items), shards, opts, walDir, wal.Options{Sync: wal.SyncNever})
			if err != nil {
				t.Fatal(err)
			}

			ops := genWALPropOps(seed, nops, users, items)
			applyOp := func(p *ShardedMaintainer, op walPropOp) {
				t.Helper()
				var err error
				switch op.kind {
				case 0:
					_, err = p.InsertBatch([]Profile{op.p})
				case 1:
					err = p.AddRating(op.user, op.item, op.rating)
				case 2:
					err = p.Rebuild(op.dirty)
				}
				if err != nil {
					t.Fatalf("apply %+v: %v", op, err)
				}
			}

			ckDir := t.TempDir()
			for i, op := range ops {
				applyOp(directPool, op)
				applyOp(loggedPool, op)
				if i == nops/2 {
					// Rebuild boundary before saving, as above: Pool.Save
					// records each shard's horizon in the manifest and
					// rotates the shard logs itself.
					quiesce := walPropOp{kind: 2}
					applyOp(directPool, quiesce)
					applyOp(loggedPool, quiesce)
					if err := loggedPool.Save(ckDir); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := loggedPool.CloseWAL(); err != nil {
				t.Fatal(err)
			}

			replayedPool, err := LoadShardedMaintainerWAL(ckDir, walDir, opts, wal.Options{Sync: wal.SyncNever})
			if err != nil {
				t.Fatal(err)
			}
			requireServedEqual(t, replayedPool.View(), directPool.View(), seed, items)
		})
	}
}
